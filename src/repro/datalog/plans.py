"""Compiled join plans: rule bodies analysed once, executed many times.

Every bottom-up engine in this package repeatedly instantiates the same rule
bodies against a growing database.  Instead of re-interpreting the body tuple
by tuple with substitution dictionaries (the historical
:func:`repro.datalog.unify.satisfy_body` nested-loop), this module compiles
each body **once** into a :class:`JoinPlan`:

* non-builtin literals are reordered greedily by bound-argument count
  (sideways information passing): at every step the literal with the most
  arguments already bound -- by constants, by the caller's initial bindings,
  or by earlier literals -- is scanned next, ties broken by textual order so
  that bodies already written in SIP order keep their order (and hence their
  work counters) exactly;
* each built-in comparison is attached to the earliest point at which all of
  its variables are bound; a built-in that can *never* become ground is
  rejected at plan time with :class:`~repro.datalog.errors.EvaluationError`
  instead of diverging or being silently dropped mid-iteration (this is the
  single code path replacing the historical deferral logic of ``unify.py``
  and ``seminaive.py``, which had drifted apart);
* the executor is a flat iterative backtracking loop that drives
  :meth:`repro.datalog.database.Database.scan` (and through it the
  per-position hash indexes of :class:`~repro.datalog.database.Relation`)
  with a positional slot array, never materialising substitution
  dictionaries or re-wrapped literals on the hot path.

Plans are cached (:func:`body_plan` / :func:`rule_plan` / :func:`delta_plan`)
keyed by the body, the set of initially-bound variables and the delta
configuration, so seminaive evaluation gets **one plan variant per recursive
occurrence index** -- the variant whose chosen occurrence reads the delta
relation while every other literal reads the full database.

Counter semantics are preserved exactly: a plan charges ``fact_retrievals``
and ``distinct_facts`` for precisely the rows the interpreted nested-loop
join would have charged for the same literal order, which
:func:`set_execution_mode` makes checkable -- in ``"interpreted"`` mode every
plan runs through a reference substitution-dictionary executor over the same
ordered body, and the differential tests assert both executors produce
identical answers *and* identical counters on every workload.

:func:`compile_image` is the analogous once-per-expression compiler for the
relational-algebra node images used by the Henschen-Naqvi and counting
engines.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from itertools import repeat as _repeat
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..storage import runtime as _storage_runtime
from ..storage.columns import (
    DIRECT_CHARGES,
    BatchScan,
    PendingCharges,
    build_probes,
    extern_columns,
)
from ..storage.runtime import MODE_KERNEL
from ..storage.table import FULL_SCAN
from .database import Database, Row
from .errors import EvaluationError
from .literals import BUILTIN_PREDICATES, Literal
from .rules import Rule
from .terms import AGGREGATE_FUNCTIONS, AggregateTerm, Constant, Variable

Substitution = Dict[Variable, object]

#: Where a scan step reads its rows from.
SOURCE_MAIN = 0      # the primary database only
SOURCE_DERIVED = 1   # the secondary (delta) database only
SOURCE_BOTH = 2      # primary first, then secondary

_MODE_COMPILED = "compiled"
_MODE_INTERPRETED = "interpreted"
_MODE_COLUMNAR = "columnar"
_mode = _MODE_COMPILED

#: A plan whose optimistic batch was aborted this many times stops trying:
#: its data shape feeds its own later scans, so every attempt would pay the
#: discarded batch on top of the row-loop re-run.
_BATCH_ABORT_LIMIT = 2


def set_execution_mode(mode: str) -> None:
    """Select how plans execute: ``"compiled"`` (default), ``"interpreted"``
    or ``"columnar"``.

    The interpreted mode runs the reference substitution-dictionary
    nested-loop join over the *same* plan (same literal order, same builtin
    placement, same delta sources) and exists so the differential tests can
    assert the two executors agree on answers and counters.

    The columnar mode keeps the compiled row executor for the generator
    entry points (:meth:`JoinPlan.substitutions` / :meth:`JoinPlan.heads` /
    :meth:`JoinPlan.pairs`, whose callers may interleave arbitrary writes
    with consumption) and additionally offers :meth:`JoinPlan.head_batch`,
    the whole-batch executor the stratified runtime drives: each scan step
    processes the entire binding batch at once -- one indexed probe per
    distinct join key, vectorized builtin filters over value columns,
    anti-join reducers for negation -- with charging replicated bit for bit
    (see :mod:`repro.storage.columns`).
    """
    global _mode
    if mode not in (_MODE_COMPILED, _MODE_INTERPRETED, _MODE_COLUMNAR):
        raise ValueError(f"unknown execution mode {mode!r}")
    _mode = mode


def get_execution_mode() -> str:
    """The currently selected execution mode."""
    return _mode


@contextmanager
def execution_mode(mode: str):
    """Context manager temporarily switching the execution mode."""
    previous = _mode
    set_execution_mode(mode)
    try:
        yield
    finally:
        set_execution_mode(previous)


_PLAN_LEGACY = "legacy"
_PLAN_COST = "cost"
_plan_mode = _PLAN_LEGACY


def set_plan_mode(mode: str) -> None:
    """Select how plans are *ordered*: ``"legacy"`` (default) or ``"cost"``.

    Orthogonal to :func:`set_execution_mode` (how the chosen plan runs).
    The legacy planner is the greedy bound-count order with textual
    tie-breaking whose work counters are pinned bit-identically on the
    paper samples.  The cost planner reads relation statistics
    (:mod:`repro.stats`) through the ``database=`` argument of the plan
    builders and orders scans by estimated intermediate-result size --
    Selinger-style dynamic programming up to :data:`_DP_LIMIT` scan
    literals, greedy with pairwise lookahead beyond -- and is only active
    when a builder is given a database to measure; without one it falls
    back to the legacy order, so cache keys (and plans) for statistics-free
    call sites are byte-identical in both modes.
    """
    global _plan_mode
    if mode not in (_PLAN_LEGACY, _PLAN_COST):
        raise ValueError(f"unknown plan mode {mode!r}")
    _plan_mode = mode


def get_plan_mode() -> str:
    """The currently selected plan mode."""
    return _plan_mode


@contextmanager
def plan_mode(mode: str):
    """Context manager temporarily switching the plan mode."""
    previous = _plan_mode
    set_plan_mode(mode)
    try:
        yield
    finally:
        set_plan_mode(previous)


#: Bounded ring of planner runtime events (adaptive re-plans, estimate
#: misses).  Entries are :class:`~repro.datalog.diagnostics.Diagnostic`
#: objects; the ring keeps only the most recent so long-running fixpoints
#: cannot grow it without bound.
_PLANNER_EVENTS: deque = deque(maxlen=64)


def record_planner_event(event) -> None:
    """Append a runtime planner diagnostic to the bounded event ring."""
    _PLANNER_EVENTS.append(event)


def drain_planner_events() -> list:
    """Pop and return every recorded planner event, oldest first."""
    events = list(_PLANNER_EVENTS)
    _PLANNER_EVENTS.clear()
    return events


class BuiltinCheck:
    """A built-in comparison compiled against slot positions.

    The compiled shape (operator plus slot/constant operands) is kept on the
    instance so the columnar executor can evaluate the check over whole value
    columns instead of calling :attr:`evaluate` once per row.
    """

    __slots__ = ("literal", "evaluate", "op", "lslot", "rslot", "lval", "rval")

    def __init__(self, literal: Literal, slot_of: Dict[Variable, int]):
        self.literal = literal
        op = self.op = BUILTIN_PREDICATES[literal.predicate]
        left, right = literal.args
        lslot = self.lslot = slot_of[left] if isinstance(left, Variable) else None
        rslot = self.rslot = slot_of[right] if isinstance(right, Variable) else None
        lval = self.lval = left.value if isinstance(left, Constant) else None
        rval = self.rval = right.value if isinstance(right, Constant) else None
        if lslot is not None and rslot is not None:
            self.evaluate = lambda slots: op(slots[lslot], slots[rslot])
        elif lslot is not None:
            self.evaluate = lambda slots: op(slots[lslot], rval)
        elif rslot is not None:
            self.evaluate = lambda slots: op(lval, slots[rslot])
        else:
            constant = op(lval, rval)
            self.evaluate = lambda slots: constant

    def evaluate_column(self, cols: Dict[int, list], n: int) -> Optional[List[bool]]:
        """The check over a whole batch: a boolean mask, or ``None`` for
        an all-true constant check (so callers skip the filter pass)."""
        op = self.op
        lslot = self.lslot
        rslot = self.rslot
        if lslot is not None and rslot is not None:
            return [op(a, b) for a, b in zip(cols[lslot], cols[rslot])]
        if lslot is not None:
            rval = self.rval
            return [op(a, rval) for a in cols[lslot]]
        if rslot is not None:
            lval = self.lval
            return [op(lval, b) for b in cols[rslot]]
        return None if op(self.lval, self.rval) else [False] * n


class NegationCheck:
    """A negated body literal compiled to an anti-join existence probe.

    Placed -- exactly like a built-in comparison -- at the earliest point by
    which all of its *named* variables are bound (stratification guarantees
    the negated relation is fully evaluated by then), the check scans the
    *main* database for rows matching the bound argument vector and fails
    the current slot assignment when any exist.  Anonymous variables that
    the positive body does not bind are existentially quantified inside the
    anti-join: their positions are simply unconstrained in the scan
    (``not e(X, _)`` asks that no ``e(X, *)`` row exist), with repeated
    occurrences of one variable still constraining each other, mirroring
    :meth:`~repro.datalog.database.Database.match`.  The scan charges
    retrievals the same way a positive scan of the same bound literal would,
    so the compiled and interpreted executors stay counter-identical.
    """

    __slots__ = (
        "literal",
        "predicate",
        "const_bindings",
        "slot_bindings",
        "intra_eq",
        "_buffer",
    )

    def __init__(
        self,
        literal: Literal,
        slot_of: Dict[Variable, int],
        bound_at_placement: Set[Variable],
    ):
        self.literal = literal
        self.predicate = literal.predicate
        const_bindings: List[Tuple[int, object]] = []
        slot_bindings: List[Tuple[int, int]] = []
        intra_eq: List[Tuple[int, int]] = []
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(literal.args):
            if isinstance(term, Constant):
                const_bindings.append((position, term.value))
            elif term in bound_at_placement:
                slot_bindings.append((position, slot_of[term]))
            else:
                # Unbound (necessarily anonymous, by the placement rule):
                # existential within the anti-join.
                first = first_position.setdefault(term, position)
                if first != position:
                    intra_eq.append((position, first))
        self.const_bindings = tuple(const_bindings)
        self.slot_bindings = tuple(slot_bindings)
        self.intra_eq = tuple(intra_eq)
        # Reusable probe-bindings buffer: the key set is fixed at compile
        # time (constant positions never overwritten, slot positions
        # overwritten on every probe) and Database.scan only reads the dict
        # transiently, so one preallocated buffer replaces the historical
        # per-row dict(self.const_bindings) copy on the anti-join hot path.
        self._buffer: Dict[int, object] = dict(const_bindings)
        for position, _ in slot_bindings:
            self._buffer[position] = None

    def holds(self, slots: List[object], database: Database) -> bool:
        bindings = self._buffer
        for position, slot in self.slot_bindings:
            bindings[position] = slots[slot]
        return not database.scan(self.predicate, bindings, self.intra_eq)


class ScanStep:
    """One non-builtin body literal compiled against slot positions."""

    __slots__ = (
        "literal",
        "predicate",
        "source",
        "const_bindings",
        "slot_bindings",
        "outputs",
        "intra_eq",
        "checks",
        "neg_checks",
    )

    def __init__(
        self,
        literal: Literal,
        source: int,
        slot_of: Dict[Variable, int],
        bound_before: Set[Variable],
    ):
        self.literal = literal
        self.predicate = literal.predicate
        self.source = source
        const_bindings: List[Tuple[int, object]] = []
        slot_bindings: List[Tuple[int, int]] = []
        outputs: List[Tuple[int, int]] = []
        intra_eq: List[Tuple[int, int]] = []
        first_position: Dict[Variable, int] = {}
        for position, term in enumerate(literal.args):
            if isinstance(term, Constant):
                const_bindings.append((position, term.value))
            elif term in bound_before:
                slot_bindings.append((position, slot_of[term]))
            else:
                first = first_position.setdefault(term, position)
                if first == position:
                    outputs.append((position, slot_of[term]))
                else:
                    intra_eq.append((position, first))
        self.const_bindings = tuple(const_bindings)
        self.slot_bindings = tuple(slot_bindings)
        self.outputs = tuple(outputs)
        self.intra_eq = tuple(intra_eq)
        self.checks: Tuple[BuiltinCheck, ...] = ()
        self.neg_checks: Tuple[NegationCheck, ...] = ()


# -- columnar batch shape analysis -----------------------------------------

#: No later scan step can observe the rows the consumer inserts while the
#: batch is being consumed: batch results are identical to the row loop's
#: by construction, so charges go straight through (DIRECT_CHARGES).
_SHAPE_SAFE = 0
#: Some step at depth >= 1 re-scans the head relation from the main
#: database: run the batch optimistically under PendingCharges, record every
#: probe key into the head relation, and abort (fall back to the row loop)
#: when a produced head row could have been observed by one of those probes.
_SHAPE_VERIFY = 1
#: Shapes head_batch does not handle (no head, unbound head, empty body,
#: caller-bound variables, or negation over the head relation).
_SHAPE_NEVER = 2

_SOURCE_TAG = {SOURCE_MAIN: ":", SOURCE_DERIVED: "#", SOURCE_BOTH: "+"}


def _probe_recipe(
    key_positions: Tuple[int, ...], const_dict: Dict[int, object]
) -> Tuple[Tuple[int, ...], Tuple[object, ...], tuple, tuple]:
    """Precompiled key-interning recipe for a step's bound argument positions.

    Returns ``(positions, template, consts, slots)``: the sorted bound
    positions (the probe's index key), an all-``None`` template of that
    length, ``(hole, value)`` pairs placing each constant's interned code
    into its template hole, and ``(hole, key_index)`` pairs mapping the
    components of a join-key tuple (ordered as ``key_slots``) into theirs.
    The kernel probe path fills a template copy with interned codes and
    probes the subset index directly, skipping the per-row bindings dict
    that :meth:`IntTable.bucket` would otherwise rebuild and re-sort.
    """
    slot_index = {position: i for i, position in enumerate(key_positions)}
    positions = tuple(sorted(set(key_positions) | set(const_dict)))
    consts = []
    slots = []
    for hole, position in enumerate(positions):
        if position in const_dict:
            consts.append((hole, const_dict[position]))
        else:
            slots.append((hole, slot_index[position]))
    return positions, (None,) * len(positions), tuple(consts), tuple(slots)


class _NegStepInfo:
    """A placed negation check precompiled for batch anti-join probing."""

    __slots__ = (
        "check",
        "key_positions",
        "key_slots",
        "const_dict",
        "probe_positions",
        "probe_template",
        "probe_consts",
        "probe_slots",
    )

    def __init__(self, check: NegationCheck):
        self.check = check
        self.key_positions = tuple(p for p, _ in check.slot_bindings)
        self.key_slots = tuple(s for _, s in check.slot_bindings)
        self.const_dict = dict(check.const_bindings)
        (
            self.probe_positions,
            self.probe_template,
            self.probe_consts,
            self.probe_slots,
        ) = _probe_recipe(self.key_positions, self.const_dict)


class _StepInfo:
    """Per-step columnar metadata: probe keys, column liveness, verification.

    ``carry`` are the slots gathered through from the parent batch,
    ``out_take`` the ``(position, slot)`` outputs actually read later, and
    ``alive`` the slots that must survive the step's filters.  For steps the
    shape analysis marked unsafe, ``record_positions`` names the sorted bound
    argument positions whose probe keys the verification pass records
    (``loose`` when the step scans the head relation with no bound position
    at all, in which case any fresh head row aborts the batch).
    """

    __slots__ = (
        "node_key",
        "carry",
        "out_take",
        "alive",
        "key_positions",
        "key_slots",
        "const_dict",
        "probe_positions",
        "probe_template",
        "probe_consts",
        "probe_slots",
        "record_positions",
        "loose",
        "negs",
    )


class _BatchInfo:
    """Whole-plan batch shape: SAFE/VERIFY/NEVER plus per-step metadata."""

    __slots__ = ("shape", "steps", "wanted_after")


#: Cache sentinel for :meth:`JoinPlan.shard_recipe` ("not analysed yet", as
#: opposed to ``None`` = "analysed, not shardable").
_SHARD_UNSET = object()


class ShardRecipe:
    """Delta-sharding metadata for a two-step delta-first plan.

    Computed once per plan (and plans are cached per delta variant in the
    plan cache, so this is per-variant work, not per-round work): the
    parallel runtime partitions the per-round delta rows by the interned
    code at ``lead_position`` -- the delta column that binds the plan's
    leading join key -- and each worker evaluates its partition through the
    ordinary :meth:`JoinPlan.head_batch` against the frozen main database.

    A recipe exists only for the shapes whose observable charging the
    parent can reconstruct exactly (see the runtime's shard executor):
    SAFE two-step plans driving from the delta (step 0 ``SOURCE_DERIVED``)
    into a keyed probe of one main-database relation (step 1
    ``SOURCE_MAIN``), with no negations anywhere and no filters or
    intra-row equalities on the probe step.  Those constraints make the
    step-0 scan unobservable (the delta is runtime scratch), and make
    ``fact_retrievals`` for the probe step equal the number of head rows
    produced -- every probed bucket row yields exactly one head row.

    ``invariant_position`` additionally marks a column the recursion
    carries through unchanged: the rule is self-recursive (the head
    predicate is the delta predicate) and the head copies the variable the
    delta binds at that position *at the same position*.  Rows then never
    mix across distinct values of that column, so the whole fixpoint
    partitions by it -- each worker can run its partition's delta rounds
    to completion locally, with no per-round synchronisation (the
    runtime's fixpoint-sharding fast path).  ``None`` when no such column
    exists; per-round sharding by ``lead_position`` still applies.
    """

    __slots__ = (
        "delta_predicate",
        "lead_position",
        "probe_predicate",
        "invariant_position",
    )

    def __init__(
        self,
        delta_predicate: str,
        lead_position: int,
        probe_predicate: str,
        invariant_position: "Optional[int]" = None,
    ):
        self.delta_predicate = delta_predicate
        self.lead_position = lead_position
        self.probe_predicate = probe_predicate
        self.invariant_position = invariant_position


class JoinPlan:
    """A compiled body: ordered scan steps, placed builtins, head template."""

    __slots__ = (
        "body",
        "head",
        "bound_vars",
        "slot_of",
        "nslots",
        "pre_checks",
        "pre_negs",
        "steps",
        "head_template",
        "head_unbound",
        "out_vars",
        "estimates",
        "_binfo",
        "_aborts",
        "_scan0",
        "_shard",
    )

    def __init__(
        self,
        body: Tuple[Literal, ...],
        head: Optional[Literal],
        bound_vars: FrozenSet[Variable],
        slot_of: Dict[Variable, int],
        pre_checks: Tuple[BuiltinCheck, ...],
        steps: Tuple[ScanStep, ...],
        pre_negs: Tuple[NegationCheck, ...] = (),
    ):
        self.body = body
        self.head = head
        self.bound_vars = bound_vars
        self.slot_of = slot_of
        self.nslots = len(slot_of)
        self.pre_checks = pre_checks
        self.pre_negs = pre_negs
        self.steps = steps
        # Every variable the historical substitution dictionaries contained:
        # the caller's initial bindings plus all scan-bound variables.
        out: List[Tuple[Variable, int]] = []
        bound_by_body: Set[Variable] = set(bound_vars)
        for step in steps:
            bound_by_body.update(step.literal.variables())
        for var, slot in slot_of.items():
            if var in bound_by_body:
                out.append((var, slot))
        self.out_vars = tuple(out)
        self.head_template: Tuple[Tuple[Optional[int], object], ...] = ()
        self.head_unbound = False
        if head is not None:
            template: List[Tuple[Optional[int], object]] = []
            for term in head.args:
                if isinstance(term, Constant):
                    template.append((None, term.value))
                elif term in bound_by_body:
                    template.append((slot_of[term], None))
                else:
                    self.head_unbound = True
            self.head_template = tuple(template)
        # Cost-model estimates for explain(): None under the legacy planner,
        # one StepEstimate per scan step when the cost planner chose the
        # order (set by compile_plan after construction).
        self.estimates: Optional[Tuple["StepEstimate", ...]] = None
        # Columnar batch-execution analysis, built lazily on first use, and
        # the count of aborted optimistic batches (see head_batch).
        self._binfo: Optional[_BatchInfo] = None
        self._aborts = 0
        # Step-0 full-scan column cache: (table, mutation epoch, columns).
        # Valid while the scanned table object is unchanged; the cached
        # lists are shared read-only (filters rebind, never mutate).
        self._scan0 = None
        # Delta-sharding analysis, built lazily on first use (see
        # :meth:`shard_recipe`).
        self._shard = _SHARD_UNSET

    # -- public views ------------------------------------------------------

    @property
    def scan_literals(self) -> Tuple[Literal, ...]:
        """The non-builtin body literals in the order the plan scans them."""
        return tuple(step.literal for step in self.steps)

    @property
    def ordered_body(self) -> Tuple[Literal, ...]:
        """The full body in execution order (filters at their placed point)."""
        ordered: List[Literal] = [check.literal for check in self.pre_checks]
        ordered.extend(neg.literal for neg in self.pre_negs)
        for step in self.steps:
            ordered.append(step.literal)
            ordered.extend(check.literal for check in step.checks)
            ordered.extend(neg.literal for neg in step.neg_checks)
        return tuple(ordered)

    def explain(self, counters=None) -> str:
        """A deterministic text rendering of the chosen plan.

        One line per scan step with its source (``main``/``delta``), access
        path (``index[positions]`` or ``full-scan``) and -- when the cost
        planner chose the order -- the model's estimated rows per probe and
        running frontier.  Filters are listed under the step they attach
        to.  Passing the :class:`~repro.instrumentation.Counters` of a run
        adds observed per-node cardinalities (``actual in=... out=...``)
        wherever the batch executor recorded them, lining estimates up
        against reality.
        """
        source_names = {
            SOURCE_MAIN: "main",
            SOURCE_DERIVED: "delta",
            SOURCE_BOTH: "main+delta",
        }

        def fmt(value: float) -> str:
            return f"{value:.3g}"

        target = str(self.head) if self.head is not None else "<body>"
        mode = "cost" if self.estimates is not None else "legacy"
        lines = [f"plan for {target}  [{mode}]"]
        if self.bound_vars:
            names = ", ".join(sorted(v.name for v in self.bound_vars))
            lines.append(f"  bound on entry: {names}")
        for check in self.pre_checks:
            lines.append(f"  pre-filter {check.literal}")
        for neg in self.pre_negs:
            lines.append(f"  pre-filter {neg.literal}")
        nodes = counters.batch.nodes if counters is not None else {}
        for index, step in enumerate(self.steps):
            positions = sorted(
                {p for p, _ in step.const_bindings}
                | {p for p, _ in step.slot_bindings}
            )
            if positions:
                access = "index[" + ",".join(str(p) for p in positions) + "]"
            else:
                access = "full-scan"
            line = (
                f"  {index}. scan {step.literal}"
                f"  source={source_names[step.source]}  access={access}"
            )
            if self.estimates is not None:
                estimate = self.estimates[index]
                line += (
                    f"  est={fmt(estimate.rows)} rows/probe"
                    f"  frontier={fmt(estimate.frontier)}"
                )
            if self.head is not None:
                node_key = (
                    f"{self.head.predicate}[{index}]"
                    f"{_SOURCE_TAG[step.source]}{step.predicate}"
                )
                cell = nodes.get(node_key)
                if cell is not None:
                    line += (
                        f"  actual in={cell[1]} out={cell[2]}"
                        f" batches={cell[0]}"
                    )
            lines.append(line)
            for check in step.checks:
                lines.append(f"       filter {check.literal}")
            for neg in step.neg_checks:
                lines.append(f"       filter {neg.literal}")
        return "\n".join(lines)

    # -- execution ---------------------------------------------------------

    def substitutions(
        self,
        database: Database,
        derived: Optional[Database] = None,
        initial: Optional[Substitution] = None,
    ) -> Iterator[Substitution]:
        """Enumerate the substitutions satisfying the body (legacy contract)."""
        if _mode == _MODE_INTERPRETED:
            yield from self._execute_interpreted(database, derived, initial)
            return
        out_vars = self.out_vars
        for slots in self._execute(database, derived, initial):
            yield {var: slots[slot] for var, slot in out_vars}

    def heads(
        self,
        database: Database,
        derived: Optional[Database] = None,
        initial: Optional[Substitution] = None,
    ) -> Iterator[Row]:
        """Enumerate head rows, one per satisfying body instantiation."""
        template = self.head_template
        if _mode == _MODE_INTERPRETED:
            for substitution in self._execute_interpreted(database, derived, initial):
                self._check_head_ground()
                yield tuple(
                    substitution[self.head.args[i]] if slot is not None else value
                    for i, (slot, value) in enumerate(template)
                )
            return
        for slots in self._execute(database, derived, initial):
            self._check_head_ground()
            yield tuple(
                slots[slot] if slot is not None else value for slot, value in template
            )

    def pairs(
        self,
        database: Database,
        derived: Optional[Database] = None,
        initial: Optional[Substitution] = None,
    ) -> Iterator[Tuple[Row, Substitution]]:
        """Enumerate ``(head_row, substitution)`` pairs (legacy contract)."""
        template = self.head_template
        if _mode == _MODE_INTERPRETED:
            for substitution in self._execute_interpreted(database, derived, initial):
                self._check_head_ground()
                row = tuple(
                    substitution[self.head.args[i]] if slot is not None else value
                    for i, (slot, value) in enumerate(template)
                )
                yield row, substitution
            return
        out_vars = self.out_vars
        for slots in self._execute(database, derived, initial):
            self._check_head_ground()
            row = tuple(
                slots[slot] if slot is not None else value for slot, value in template
            )
            yield row, {var: slots[slot] for var, slot in out_vars}

    def _check_head_ground(self) -> None:
        if self.head_unbound:
            raise EvaluationError(
                f"rule {Rule(self.head, list(self.body))} produced a non-ground head"
            )

    def _execute(
        self,
        database: Database,
        derived: Optional[Database],
        initial: Optional[Substitution],
    ) -> Iterator[List[object]]:
        """The flat iterative executor over positional binding slots."""
        slots: List[object] = [None] * self.nslots
        if initial:
            slot_of = self.slot_of
            for var, value in initial.items():
                slot = slot_of.get(var)
                if slot is not None:
                    slots[slot] = value
        for check in self.pre_checks:
            if not check.evaluate(slots):
                return
        for neg in self.pre_negs:
            if not neg.holds(slots, database):
                return
        steps = self.steps
        if not steps:
            yield slots
            return
        last = len(steps) - 1
        iterators: List[Optional[Iterator[Row]]] = [None] * len(steps)
        iterators[0] = self._candidates(steps[0], slots, database, derived)
        depth = 0
        while depth >= 0:
            row = next(iterators[depth], None)
            if row is None:
                depth -= 1
                continue
            step = steps[depth]
            for position, slot in step.outputs:
                slots[slot] = row[position]
            ok = True
            for check in step.checks:
                if not check.evaluate(slots):
                    ok = False
                    break
            if ok:
                for neg in step.neg_checks:
                    if not neg.holds(slots, database):
                        ok = False
                        break
            if not ok:
                continue
            if depth == last:
                yield slots
            else:
                depth += 1
                iterators[depth] = self._candidates(steps[depth], slots, database, derived)

    def _candidates(
        self,
        step: ScanStep,
        slots: List[object],
        database: Database,
        derived: Optional[Database],
    ) -> Iterator[Row]:
        source = step.source
        if source == SOURCE_MAIN:
            sources: Tuple[Database, ...] = (database,)
        elif source == SOURCE_DERIVED:
            sources = (derived,) if derived is not None else ()
        else:
            sources = (database,) if derived is None else (database, derived)
        if step.slot_bindings or step.const_bindings:
            bindings = dict(step.const_bindings)
            for position, slot in step.slot_bindings:
                bindings[position] = slots[slot]
        else:
            bindings = None
        if len(sources) == 1:
            return iter(sources[0].scan(step.predicate, bindings, step.intra_eq))
        rows: List[Row] = []
        for db in sources:
            rows.extend(db.scan(step.predicate, bindings, step.intra_eq))
        return iter(rows)

    # -- columnar batch executor -------------------------------------------

    def _build_batch_info(self) -> _BatchInfo:
        """Analyse the plan once for whole-batch execution (cached)."""
        info = _BatchInfo()
        steps = self.steps
        head = self.head
        negs: List[NegationCheck] = list(self.pre_negs)
        for step in steps:
            negs.extend(step.neg_checks)
        if (
            head is None
            or self.head_unbound
            or not steps
            or self.bound_vars
            or any(neg.predicate == head.predicate for neg in negs)
        ):
            info.shape = _SHAPE_NEVER
            info.steps = ()
            info.wanted_after = ()
            self._binfo = info
            return info
        head_predicate = head.predicate
        unsafe = {
            index
            for index in range(1, len(steps))
            if steps[index].predicate == head_predicate
            and steps[index].source != SOURCE_DERIVED
        }
        info.shape = _SHAPE_VERIFY if unsafe else _SHAPE_SAFE

        # Backward liveness: ``need`` holds the slots required by the head
        # and by every step after the one being analysed.
        need: Set[int] = {slot for slot, _ in self.head_template if slot is not None}
        step_infos: List[Optional[_StepInfo]] = [None] * len(steps)
        for index in range(len(steps) - 1, -1, -1):
            step = steps[index]
            si = _StepInfo()
            si.node_key = (
                f"{head_predicate}[{index}]"
                f"{_SOURCE_TAG[step.source]}{step.predicate}"
            )
            si.alive = tuple(sorted(need))
            reads: Set[int] = set()
            for check in step.checks:
                if check.lslot is not None:
                    reads.add(check.lslot)
                if check.rslot is not None:
                    reads.add(check.rslot)
            for neg in step.neg_checks:
                reads.update(slot for _, slot in neg.slot_bindings)
            gather = need | reads
            produced = {slot for _, slot in step.outputs}
            si.carry = tuple(sorted(gather - produced))
            si.out_take = tuple(
                (position, slot) for position, slot in step.outputs if slot in gather
            )
            si.key_positions = tuple(p for p, _ in step.slot_bindings)
            si.key_slots = tuple(s for _, s in step.slot_bindings)
            si.const_dict = dict(step.const_bindings)
            (
                si.probe_positions,
                si.probe_template,
                si.probe_consts,
                si.probe_slots,
            ) = _probe_recipe(si.key_positions, si.const_dict)
            si.record_positions = None
            si.loose = False
            if index in unsafe:
                bound = sorted(set(si.key_positions) | set(si.const_dict))
                if bound:
                    si.record_positions = tuple(bound)
                else:
                    si.loose = True
            si.negs = tuple(_NegStepInfo(neg) for neg in step.neg_checks)
            step_infos[index] = si
            need = (need - produced) | set(si.key_slots) | (reads - produced)
        info.steps = tuple(step_infos)
        # For each step, the union of key slots every *later* step probes
        # on: the set of slots whose interned code columns are worth
        # carrying forward (see the ``ccols`` threading in _run_batch).
        wanted_after: List[FrozenSet[int]] = [frozenset()] * len(step_infos)
        acc: Set[int] = set()
        for wi in range(len(step_infos) - 1, -1, -1):
            wanted_after[wi] = frozenset(acc)
            acc.update(step_infos[wi].key_slots)
        info.wanted_after = tuple(wanted_after)
        self._binfo = info
        return info

    def shard_recipe(self) -> Optional[ShardRecipe]:
        """The delta-sharding recipe, or ``None`` when not shardable (cached).

        See :class:`ShardRecipe` for the eligible shape.  The analysis runs
        once per plan object; since delta-variant plans are cached in the
        plan cache, the per-round cost of the parallel runtime's shard
        dispatch is a single attribute read.
        """
        recipe = self._shard
        if recipe is _SHARD_UNSET:
            recipe = self._build_shard_recipe()
            self._shard = recipe
        return recipe

    def _build_shard_recipe(self) -> Optional[ShardRecipe]:
        binfo = self._binfo
        if binfo is None:
            binfo = self._build_batch_info()
        steps = self.steps
        if (
            binfo.shape != _SHAPE_SAFE
            or len(steps) != 2
            or steps[0].source != SOURCE_DERIVED
            or steps[1].source != SOURCE_MAIN
            or self.pre_negs
            or steps[0].neg_checks
            or steps[1].neg_checks
            or steps[1].checks
            or steps[1].intra_eq
        ):
            return None
        info1 = binfo.steps[1]
        if not info1.key_slots:
            return None
        lead_slot = info1.key_slots[0]
        lead_position = None
        for position, slot in steps[0].outputs:
            if slot == lead_slot:
                lead_position = position
                break
        if lead_position is None:
            return None
        invariant_position = None
        head = self.head
        if (
            head is not None
            and head.predicate == steps[0].predicate
            and len(self.head_template) == len(head.args)
        ):
            bound_at = dict(steps[0].outputs)
            for position, (slot, _value) in enumerate(self.head_template):
                if slot is not None and bound_at.get(position) == slot:
                    invariant_position = position
                    break
        return ShardRecipe(
            steps[0].predicate,
            lead_position,
            steps[1].predicate,
            invariant_position,
        )

    def head_batch(
        self,
        database: Database,
        derived: Optional[Database] = None,
        frozen: bool = False,
    ) -> Optional[List[Row]]:
        """Execute the whole plan as one batch; all head rows, or ``None``.

        ``None`` means the caller must fall back to the row-at-a-time
        :meth:`heads` loop: either the plan's shape is not batchable, or an
        optimistic batch over a self-feeding plan was discarded by the
        probe-overlap verification (in which case no counter, touched-set or
        charging-memo state was modified).

        The caller contract matches the stratified runtime's firing loops
        exactly: nothing the plan reads is mutated until the returned batch
        is fully consumed, and consumption only inserts the returned rows
        into ``head.predicate`` of ``database`` (plus databases the plan
        does not read).  ``frozen=True`` strengthens the promise to "no
        mutation of ``database`` at all" (the DRed overdelete loop), letting
        self-feeding shapes skip verification entirely.
        """
        binfo = self._binfo
        if binfo is None:
            binfo = self._build_batch_info()
        stats = database.counters.batch
        if binfo.shape == _SHAPE_NEVER:
            stats.fallbacks += 1
            return None
        verify = binfo.shape == _SHAPE_VERIFY and not frozen
        if verify and self._aborts >= _BATCH_ABORT_LIMIT:
            stats.fallbacks += 1
            return None
        charges = PendingCharges() if verify else DIRECT_CHARGES
        heads = self._run_batch(database, derived, binfo, charges, verify, stats)
        if heads is None:
            charges.discard()
            self._aborts += 1
            stats.fallbacks += 1
            return None
        charges.commit()
        return heads

    def _run_batch(
        self,
        database: Database,
        derived: Optional[Database],
        binfo: _BatchInfo,
        charges,
        verify: bool,
        stats,
    ) -> Optional[List[Row]]:
        # Constant-only pre-filters (no variables are bound before step 0).
        slots0: List[object] = [None] * self.nslots
        for check in self.pre_checks:
            if not check.evaluate(slots0):
                return []
        for neg in self.pre_negs:
            if charges.scan(database, neg.predicate, neg._buffer, neg.intra_eq):
                return []

        steps = self.steps
        infos = binfo.steps
        step = steps[0]
        info = infos[0]
        sources = self._batch_sources(step, database, derived)
        bindings0 = dict(step.const_bindings) if step.const_bindings else None
        node_updates: List[Tuple[str, int, int]] = []
        recorded: List[Tuple[Tuple[int, ...], Set[tuple]]] = []
        loose_probed = False
        cols: Dict[int, list] = {}
        # Interned code columns threaded alongside ``cols`` for the slots
        # later steps probe on, so those probes skip the per-row value
        # re-interning.  A slot is absent when its codes are unknown (rows
        # gathered from bucket values) or stale (a filter mask rebuilt the
        # value columns); probing falls back to the interner then.
        ccols: Dict[int, object] = {}
        wanted_after = binfo.wanted_after
        if (
            bindings0 is None
            and not step.intra_eq
            and len(sources) == 1
            and _storage_runtime._mode == MODE_KERNEL
        ):
            # Single-source full scan in kernel storage mode: charge through
            # an inline copy of Database.scan's FULL_SCAN memo -- directly,
            # into the pending buffer of a verified batch, or not at all for
            # a runtime-internal source, whose counters are unobservable --
            # and materialise columns through the packed code arrays, cached
            # per plan while the table object is unchanged.
            db0 = sources[0]
            relation0 = db0.relations.get(step.predicate)
            n = len(relation0.table) if relation0 is not None else 0
            if n:
                table = relation0.table
                if db0.counters is database.counters:
                    stamp = (n, table.mutations)
                    if charges is DIRECT_CHARGES:
                        charged = db0._charged.get(step.predicate)
                        if charged is None:
                            charged = db0._charged[step.predicate] = {}
                        if charged.get(FULL_SCAN) == stamp:
                            db0.counters.fact_retrievals += n
                        else:
                            db0._charge(step.predicate, table.all_rows())
                            charged[FULL_SCAN] = stamp
                    else:
                        pend = charges._pending(db0)
                        memo_key = (step.predicate, FULL_SCAN)
                        known = pend.memo.get(memo_key)
                        if known is None:
                            charged = db0._charged.get(step.predicate)
                            if charged is not None:
                                known = charged.get(FULL_SCAN)
                        if known == stamp:
                            pend.retrievals += n
                        else:
                            charges._charge_rows(
                                pend, step.predicate, table.all_rows()
                            )
                            pend.memo[memo_key] = stamp
                if info.out_take:
                    cached = self._scan0
                    if (
                        cached is not None
                        and cached[0] is table
                        and cached[1] == table.mutations
                    ):
                        cols = dict(cached[2])
                        ccols = dict(cached[3])
                    else:
                        gathered = extern_columns(
                            table, tuple(position for position, _ in info.out_take)
                        )
                        base = {
                            slot: column
                            for (_, slot), column in zip(info.out_take, gathered)
                        }
                        arrays = table.column_arrays()
                        wanted0 = wanted_after[0]
                        cbase = {
                            slot: arrays[position]
                            for position, slot in info.out_take
                            if slot in wanted0
                        }
                        self._scan0 = (table, table.mutations, base, cbase)
                        cols = dict(base)
                        ccols = dict(cbase)
        else:
            rows0: List[Row] = []
            for db in sources:
                found = charges.scan(db, step.predicate, bindings0, step.intra_eq)
                if found:
                    rows0 = found if not rows0 else rows0 + found
            n = len(rows0)
            if n:
                for position, slot in info.out_take:
                    cols[slot] = [row[position] for row in rows0]
        rows_in = n
        if n:
            kept = self._batch_filters(step, info, cols, n, database, charges)
            if kept != n:
                n = kept
                ccols = {}
            if cols and len(cols) != len(info.alive):
                cols = {slot: cols[slot] for slot in info.alive}
        node_updates.append((info.node_key, rows_in, n))

        for index in range(1, len(steps)):
            if not n:
                break
            step = steps[index]
            info = infos[index]
            entering = n
            const_dict = info.const_dict
            record_keys: Optional[Set[tuple]] = None
            record_positions = info.record_positions
            if verify:
                if info.loose:
                    loose_probed = True
                elif record_positions is not None:
                    record_keys = set()
                    recorded.append((record_positions, record_keys))
            key_slots = info.key_slots
            out_parent: List[int] = []
            out_rows: List[Row] = []
            extend_parents = out_parent.extend
            extend_rows = out_rows.extend
            # Keyed scans in kernel storage mode go through inline index
            # probes: same buckets, same charging memo, none of the
            # per-probe scan machinery.  Under a pending transaction the
            # probes buffer their charges (BufferedProbe) and the join
            # records every probed key for the verification pass.
            kernel = None
            if (
                key_slots
                and not step.intra_eq
                and _storage_runtime._mode == MODE_KERNEL
            ):
                kernel = build_probes(
                    self._batch_sources(step, database, derived),
                    step.predicate,
                    info.probe_positions,
                    database.counters,
                    None if charges is DIRECT_CHARGES else charges,
                )
                if kernel is not None and not kernel and record_keys is not None:
                    # No source holds the relation, but the verification
                    # pass still needs the probed keys (the row loop's scans
                    # would observe the relation once the consumer creates
                    # it): use the generic path, whose misses record them.
                    kernel = None
            if kernel is not None:
                scan = None
                if kernel:
                    ck = None
                    if ccols and record_keys is None:
                        ck = [ccols.get(slot) for slot in key_slots]
                        if any(column is None for column in ck):
                            ck = None
                    self._kernel_join(
                        kernel, info, cols, out_parent, out_rows, record_keys, ck
                    )
            else:
                scan = BatchScan(
                    charges,
                    step.predicate,
                    step.intra_eq,
                    self._batch_sources(step, database, derived),
                )
                cache = scan.cache
                get = cache.get
                miss = scan.miss
                replay = scan.replay
            if scan is None:
                pass
            elif len(key_slots) == 1:
                # The overwhelmingly common join shape: one bound position.
                position = info.key_positions[0]
                for i, value in enumerate(cols[key_slots[0]]):
                    hit = get(value)
                    if hit is None:
                        if const_dict:
                            bindings = dict(const_dict)
                            bindings[position] = value
                        else:
                            bindings = {position: value}
                        rows = miss(value, bindings)
                        if record_keys is not None:
                            record_keys.add(
                                tuple(bindings[p] for p in record_positions)
                            )
                    else:
                        replay(hit)
                        rows = hit[0]
                    if rows:
                        extend_parents(_repeat(i, len(rows)))
                        extend_rows(rows)
            elif key_slots:
                positions = info.key_positions
                key_columns = [cols[slot] for slot in key_slots]
                for i, key in enumerate(zip(*key_columns)):
                    hit = get(key)
                    if hit is None:
                        bindings = dict(const_dict) if const_dict else {}
                        for position, value in zip(positions, key):
                            bindings[position] = value
                        rows = miss(key, bindings)
                        if record_keys is not None:
                            record_keys.add(
                                tuple(bindings[p] for p in record_positions)
                            )
                    else:
                        replay(hit)
                        rows = hit[0]
                    if rows:
                        extend_parents(_repeat(i, len(rows)))
                        extend_rows(rows)
            else:
                # No join key: every parent row scans the same (possibly
                # constant-bound) bucket -- one real scan, n-1 replays.
                bindings = dict(const_dict) if const_dict else None
                rows = miss((), bindings)
                if record_keys is not None:
                    record_keys.add(tuple(bindings[p] for p in record_positions))
                if rows:
                    count = len(rows)
                    hit = cache[()]
                    for i in range(n):
                        if i:
                            replay(hit)
                        extend_parents(_repeat(i, count))
                        extend_rows(rows)

            n = len(out_rows)
            if not n:
                node_updates.append((info.node_key, entering, 0))
                break
            new_cols: Dict[int, list] = {}
            for slot in info.carry:
                column = cols[slot]
                new_cols[slot] = [column[parent] for parent in out_parent]
            for position, slot in info.out_take:
                new_cols[slot] = [row[position] for row in out_rows]
            cols = new_cols
            if ccols:
                wanted = wanted_after[index]
                carried: Dict[int, object] = {}
                for slot, column in ccols.items():
                    if slot in wanted and slot in new_cols:
                        carried[slot] = [column[parent] for parent in out_parent]
                ccols = carried
            kept = self._batch_filters(step, info, cols, n, database, charges)
            if kept != n:
                n = kept
                ccols = {}
            if cols and len(cols) != len(info.alive):
                cols = {slot: cols[slot] for slot in info.alive}
            node_updates.append((info.node_key, entering, n))

        if n:
            template = self.head_template
            if not template:
                heads: List[Row] = [()] * n
            else:
                head_columns: List[object] = []
                constant_only = True
                for slot, value in template:
                    if slot is not None:
                        constant_only = False
                        head_columns.append(cols[slot])
                    else:
                        head_columns.append(_repeat(value))
                if constant_only:
                    heads = [tuple(value for _, value in template)] * n
                else:
                    heads = list(zip(*head_columns))
        else:
            heads = []

        if verify and heads and self._verify_batch(database, heads, recorded, loose_probed):
            return None

        stats.batches += 1
        stats.rows_in += rows_in
        stats.rows_out += len(heads)
        for key, into, out in node_updates:
            cell = stats.node(key)
            cell[0] += 1
            cell[1] += into
            cell[2] += out
        return heads

    @staticmethod
    def _kernel_join(
        probes,
        info: _StepInfo,
        cols: Dict[int, list],
        out_parent: List[int],
        out_rows: List[Row],
        record_keys: Optional[Set[tuple]] = None,
        code_columns: Optional[list] = None,
    ) -> None:
        """Expand one keyed scan step through inline kernel index probes.

        One :meth:`KernelProbe.lookup` per parent row per source, in source
        order -- the exact scan sequence of the row executor, with the
        bucket-level memo making repeat keys O(1).  Join keys are interned
        once per row through the shared interner's code map -- unless
        ``code_columns`` supplies the already-interned key columns (threaded
        through the batch from a step-0 column scan), in which case probes
        use the codes directly; column values always come from stored rows,
        so the interner-miss probe shape cannot arise for them.  When
        ``record_keys`` is given (a verified batch probing an unsafe step),
        every probed *value* key -- bound values in sorted argument-position
        order, exactly the tuples the generic path records -- is added to it
        (callers pass ``code_columns=None`` then).
        """
        code_get = probes[0].code_map.get
        append_parent = out_parent.append
        append_row = out_rows.append
        extend_parents = out_parent.extend
        extend_rows = out_rows.extend
        key_slots = info.key_slots
        consts = info.probe_consts
        base = None
        vbase = None
        if record_keys is not None:
            vbase = list(info.probe_template)
            for hole, value in consts:
                vbase[hole] = value
        if consts:
            base = list(info.probe_template)
            for hole, value in consts:
                code = code_get(value)
                if code is None:
                    # A constant the interner has never seen: every probe is
                    # the shared ``(positions, None)`` empty bucket.  One
                    # stamp per source charges the whole batch (repeats hit
                    # the memo and add zero, exactly like the row loop).
                    for probe in probes:
                        probe.lookup(None)
                    if record_keys is not None:
                        record = record_keys.add
                        slot_targets = info.probe_slots
                        for key in zip(*[cols[slot] for slot in key_slots]):
                            values = vbase[:]
                            for vhole, key_index in slot_targets:
                                values[vhole] = key[key_index]
                            record(tuple(values))
                    return
                base[hole] = code
        if len(probes) == 1 and len(key_slots) == 1 and base is None:
            probe = probes[0]
            column = (
                code_columns[0] if code_columns is not None else cols[key_slots[0]]
            )
            coded = code_columns is not None
            if record_keys is None and not probe.charging and probe.index is not None:
                # Hottest shape of the fixpoint inner loop -- single-key
                # probes into the per-round delta: raw dict gets only.
                index_get = probe.index.get
                if coded:
                    for i, code in enumerate(column):
                        rows = index_get((code,))
                        if rows:
                            if len(rows) == 1:
                                append_parent(i)
                                append_row(rows[0])
                            else:
                                extend_parents(_repeat(i, len(rows)))
                                extend_rows(rows)
                    return
                for i, value in enumerate(column):
                    code = code_get(value)
                    if code is None:
                        continue
                    rows = index_get((code,))
                    if rows:
                        if len(rows) == 1:
                            append_parent(i)
                            append_row(rows[0])
                        else:
                            extend_parents(_repeat(i, len(rows)))
                            extend_rows(rows)
                return
            lookup = probe.lookup
            if record_keys is None:
                if coded:
                    for i, code in enumerate(column):
                        rows = lookup((code,))
                        if rows:
                            if len(rows) == 1:
                                append_parent(i)
                                append_row(rows[0])
                            else:
                                extend_parents(_repeat(i, len(rows)))
                                extend_rows(rows)
                    return
                for i, value in enumerate(column):
                    code = code_get(value)
                    rows = lookup(None if code is None else (code,))
                    if rows:
                        if len(rows) == 1:
                            append_parent(i)
                            append_row(rows[0])
                        else:
                            extend_parents(_repeat(i, len(rows)))
                            extend_rows(rows)
            else:
                record = record_keys.add
                for i, value in enumerate(column):
                    record((value,))
                    code = code_get(value)
                    rows = lookup(None if code is None else (code,))
                    if rows:
                        extend_parents(_repeat(i, len(rows)))
                        extend_rows(rows)
            return
        slot_targets = info.probe_slots
        template0 = base if base is not None else list(info.probe_template)
        single = probes[0].lookup if len(probes) == 1 else None
        if code_columns is not None:
            for i, ckey in enumerate(zip(*code_columns)):
                template = template0[:]
                for hole, key_index in slot_targets:
                    template[hole] = ckey[key_index]
                int_key = tuple(template)
                if single is not None:
                    rows = single(int_key)
                else:
                    rows = None
                    for probe in probes:
                        found = probe.lookup(int_key)
                        if found:
                            rows = found if rows is None else [*rows, *found]
                if rows:
                    if len(rows) == 1:
                        append_parent(i)
                        append_row(rows[0])
                    else:
                        extend_parents(_repeat(i, len(rows)))
                        extend_rows(rows)
            return
        key_columns = [cols[slot] for slot in key_slots]
        record = record_keys.add if record_keys is not None else None
        for i, key in enumerate(zip(*key_columns)):
            if record is not None:
                values = vbase[:]
                for hole, key_index in slot_targets:
                    values[hole] = key[key_index]
                record(tuple(values))
            template = template0[:]
            for hole, key_index in slot_targets:
                code = code_get(key[key_index])
                if code is None:
                    int_key = None
                    break
                template[hole] = code
            else:
                int_key = tuple(template)
            if single is not None:
                rows = single(int_key)
            else:
                rows = None
                for probe in probes:
                    found = probe.lookup(int_key)
                    if found:
                        rows = found if rows is None else [*rows, *found]
            if rows:
                if len(rows) == 1:
                    append_parent(i)
                    append_row(rows[0])
                else:
                    extend_parents(_repeat(i, len(rows)))
                    extend_rows(rows)

    @staticmethod
    def _kernel_antimask(
        probe, neg_info: _NegStepInfo, cols: Dict[int, list]
    ) -> Optional[List[bool]]:
        """Keep-mask for one negation via inline kernel index probes.

        ``None`` means every row passes with the whole batch's charges
        already applied (a constant the interner has never seen: one shared
        empty-bucket stamp, repeats add zero).
        """
        code_get = probe.code_map.get
        lookup = probe.lookup
        key_slots = neg_info.key_slots
        consts = neg_info.probe_consts
        base = None
        if consts:
            base = list(neg_info.probe_template)
            for hole, value in consts:
                code = code_get(value)
                if code is None:
                    lookup(None)
                    return None
                base[hole] = code
        if len(key_slots) == 1 and base is None:
            return [
                not lookup(None if code is None else (code,))
                for code in map(code_get, cols[key_slots[0]])
            ]
        slot_targets = neg_info.probe_slots
        key_columns = [cols[slot] for slot in key_slots]
        template0 = base if base is not None else list(neg_info.probe_template)
        mask: List[bool] = []
        keep = mask.append
        for key in zip(*key_columns):
            template = template0[:]
            for hole, key_index in slot_targets:
                code = code_get(key[key_index])
                if code is None:
                    int_key = None
                    break
                template[hole] = code
            else:
                int_key = tuple(template)
            keep(not lookup(int_key))
        return mask

    def _batch_filters(
        self,
        step: ScanStep,
        info: _StepInfo,
        cols: Dict[int, list],
        n: int,
        database: Database,
        charges,
    ) -> int:
        """Apply the step's builtin checks and negation anti-joins in place.

        Filters run in placement order, matching the per-row executor's
        short-circuit sequence observably: builtins charge nothing, and the
        per-negation probe totals are order-independent sums.
        """
        for check in step.checks:
            if not n:
                return 0
            mask = check.evaluate_column(cols, n)
            if mask is None:
                continue
            kept = sum(mask)
            if kept == n:
                continue
            for slot, column in cols.items():
                cols[slot] = [v for v, ok in zip(column, mask) if ok]
            n = kept
        for neg_info in info.negs:
            if not n:
                return 0
            neg = neg_info.check
            key_slots = neg_info.key_slots
            if (
                key_slots
                and not neg.intra_eq
                and _storage_runtime._mode == MODE_KERNEL
            ):
                kernel = build_probes(
                    (database,),
                    neg.predicate,
                    neg_info.probe_positions,
                    database.counters,
                    None if charges is DIRECT_CHARGES else charges,
                )
                if kernel is not None:
                    if not kernel:
                        continue  # no relation: uncharged empty scans, all pass
                    mask = self._kernel_antimask(kernel[0], neg_info, cols)
                    if mask is None:
                        continue  # unknown constant: empty buckets, all pass
                    kept = sum(mask)
                    if kept != n:
                        for slot, column in cols.items():
                            cols[slot] = [v for v, ok in zip(column, mask) if ok]
                        n = kept
                    continue
            scan = BatchScan(charges, neg.predicate, neg.intra_eq, (database,))
            cache = scan.cache
            get = cache.get
            miss = scan.miss
            replay = scan.replay
            const_dict = neg_info.const_dict
            key_slots = neg_info.key_slots
            mask = []
            keep = mask.append
            if len(key_slots) == 1:
                position = neg_info.key_positions[0]
                for value in cols[key_slots[0]]:
                    hit = get(value)
                    if hit is None:
                        if const_dict:
                            bindings = dict(const_dict)
                            bindings[position] = value
                        else:
                            bindings = {position: value}
                        keep(not miss(value, bindings))
                    else:
                        replay(hit)
                        keep(not hit[0])
            elif key_slots:
                positions = neg_info.key_positions
                key_columns = [cols[slot] for slot in key_slots]
                for key in zip(*key_columns):
                    hit = get(key)
                    if hit is None:
                        bindings = dict(const_dict) if const_dict else {}
                        for position, value in zip(positions, key):
                            bindings[position] = value
                        keep(not miss(key, bindings))
                    else:
                        replay(hit)
                        keep(not hit[0])
            else:
                bindings = dict(const_dict) if const_dict else None
                rows = miss((), bindings)
                if rows:
                    # Every parent row probes the same non-empty bucket and
                    # fails; replay the n-1 repeat charges and empty the batch.
                    hit = cache[()]
                    for _ in range(n - 1):
                        replay(hit)
                    for slot in cols:
                        cols[slot] = []
                    return 0
                continue  # empty bucket: all rows pass, repeats charge nothing
            kept = sum(mask)
            if kept == n:
                continue
            for slot, column in cols.items():
                cols[slot] = [v for v, ok in zip(column, mask) if ok]
            n = kept
        return n

    def _verify_batch(
        self,
        database: Database,
        heads: List[Row],
        recorded: List[Tuple[Tuple[int, ...], Set[tuple]]],
        loose_probed: bool,
    ) -> bool:
        """True when a produced head row overlaps a recorded probe key.

        The consumer will insert exactly the *fresh* head rows (the ones not
        already stored).  The row-at-a-time loop diverges from the batch only
        if some scan of the head relation could have returned one of those
        rows mid-enumeration -- i.e. the row projects onto a probed key (or
        any fresh row exists while an unkeyed full scan of the head relation
        was probed).  Membership checks here are uncharged by design.
        """
        relation = database.relations.get(self.head.predicate)
        contains = relation.table.contains if relation is not None else None
        fresh: List[Row] = []
        seen: Set[Row] = set()
        for row in heads:
            if row in seen:
                continue
            seen.add(row)
            if contains is None or not contains(row):
                fresh.append(row)
        if not fresh:
            return False
        if loose_probed:
            return True
        for positions, keys in recorded:
            for row in fresh:
                if tuple(row[position] for position in positions) in keys:
                    return True
        return False

    def _batch_sources(
        self,
        step: ScanStep,
        database: Database,
        derived: Optional[Database],
    ) -> Tuple[Database, ...]:
        source = step.source
        if source == SOURCE_MAIN:
            return (database,)
        if source == SOURCE_DERIVED:
            return (derived,) if derived is not None else ()
        return (database,) if derived is None else (database, derived)

    # -- reference executor (interpreted mode) -----------------------------

    def _execute_interpreted(
        self,
        database: Database,
        derived: Optional[Database],
        initial: Optional[Substitution],
    ) -> Iterator[Substitution]:
        """Substitution-dictionary nested-loop join over the same plan.

        This is the historical ``unify.py`` evaluation style -- build a bound
        literal per step, :meth:`Database.match` it, extend the substitution
        per row -- kept as an independently-implemented referee for the
        compiled executor.  Answers *and* charged counters must agree.
        """
        from .unify import apply_to_literal, match_literal

        substitution: Substitution = dict(initial) if initial else {}
        for check in self.pre_checks:
            grounded = apply_to_literal(check.literal, substitution)
            if not grounded.evaluate_builtin():
                return
        for neg in self.pre_negs:
            probe = apply_to_literal(neg.literal.positive(), substitution)
            if database.match(probe):
                return
        steps = self.steps

        def satisfy(index: int, substitution: Substitution) -> Iterator[Substitution]:
            if index >= len(steps):
                yield substitution
                return
            step = steps[index]
            bound_literal = apply_to_literal(step.literal, substitution)
            if step.source == SOURCE_MAIN:
                rows = database.match(bound_literal)
            elif step.source == SOURCE_DERIVED:
                rows = derived.match(bound_literal) if derived is not None else []
            else:
                rows = list(database.match(bound_literal))
                if derived is not None:
                    rows.extend(derived.match(bound_literal))
            for row in rows:
                extended = match_literal(step.literal, row, substitution)
                if extended is None:
                    continue
                ok = True
                for check in step.checks:
                    if not apply_to_literal(check.literal, extended).evaluate_builtin():
                        ok = False
                        break
                if ok:
                    for neg in step.neg_checks:
                        probe = apply_to_literal(neg.literal.positive(), extended)
                        if database.match(probe):
                            ok = False
                            break
                if ok:
                    yield from satisfy(index + 1, extended)

        for result in satisfy(0, substitution):
            yield dict(result)


# -- cost model ------------------------------------------------------------

#: Scan-literal count up to which the cost planner runs exact Selinger
#: dynamic programming over join orders; beyond it, greedy with pairwise
#: lookahead (exact DP is 2^n states).
_DP_LIMIT = 8

#: Assumed pass rates for built-in filters when ordering by cost.  These are
#: the classic System-R magic fractions: equality is very selective, an
#: inequality barely filters, a comparison keeps somewhat under half.
_BUILTIN_SELECTIVITY = {"=": 0.1, "==": 0.1, "!=": 0.9}
_BUILTIN_DEFAULT_SELECTIVITY = 0.4

#: A negation filter is never assumed to keep fewer than this fraction --
#: an estimated pass rate of exactly 0 would zero the frontier and make
#: every downstream order look equally free.
_MIN_PASS_RATE = 0.05
#: Frontier floor for cost propagation.  A relation that is empty at plan
#: time (an intensional predicate before round 0, a magic/supplementary
#: scratch relation) estimates 0 rows per probe; multiplying the frontier
#: by that zero would make every *subsequent* step free and the order
#: search degenerate to arbitrary tie-breaking -- over relations that do
#: grow at runtime.  Propagating at least this fraction keeps downstream
#: scans comparable, so the residual order stays sensible even when it is
#: entered through a currently-empty relation.
_FRONTIER_FLOOR = 0.1


class StepEstimate:
    """The cost model's view of one ordered scan step, kept for explain().

    ``bound_positions`` are the argument positions probed through an index
    (empty means a full scan), ``rows`` the estimated rows one probe
    returns, and ``frontier`` the estimated number of binding tuples alive
    *after* the step (filters the step enables included).
    """

    __slots__ = ("literal", "bound_positions", "rows", "frontier")

    def __init__(
        self,
        literal: Literal,
        bound_positions: Tuple[int, ...],
        rows: float,
        frontier: float,
    ):
        self.literal = literal
        self.bound_positions = bound_positions
        self.rows = rows
        self.frontier = frontier

    @property
    def access(self) -> str:
        """``index[p,...]`` when the scan probes bound positions, else
        ``full-scan``."""
        if self.bound_positions:
            inner = ",".join(str(p) for p in self.bound_positions)
            return f"index[{inner}]"
        return "full-scan"


def _scan_estimate(literal, bound, statistics, scaled):
    """``(estimated rows per probe, probed positions)`` for one scan.

    ``bound`` is the variable set known before the scan; constants probe by
    their exact interned frequency (an un-interned constant matches zero
    rows).  ``scaled`` marks the seminaive delta occurrence: the full
    relation's distribution is kept but its cardinality is replaced by the
    statistics view's override (the observed or assumed delta size).
    """
    predicate = literal.predicate
    stats = statistics.stats_for(predicate)
    bound_positions: List[int] = []
    known: Dict[int, Optional[int]] = {}
    for position, term in enumerate(literal.args):
        if isinstance(term, Constant):
            bound_positions.append(position)
            known[position] = statistics.code_of(predicate, term.value)
        elif isinstance(term, Variable) and term in bound:
            bound_positions.append(position)
    if stats is None:
        # Unknown relation (typically intensional scratch): assume the
        # override cardinality if any, with a token fan-in per bound slot.
        estimate = statistics.cardinality(predicate)
        for _ in bound_positions:
            estimate *= 0.2
    else:
        estimate = stats.estimate_rows(bound_positions, known)
        if scaled and stats.cardinality:
            estimate *= statistics.cardinality(predicate) / stats.cardinality
    return estimate, tuple(bound_positions)


def _filter_pass_rate(kind, literal, bound, statistics):
    """Estimated fraction of binding tuples surviving a placed filter."""
    if kind == "builtin":
        return _BUILTIN_SELECTIVITY.get(
            literal.predicate, _BUILTIN_DEFAULT_SELECTIVITY
        )
    # Negation: the anti-join drops a tuple when a matching row exists.  The
    # expected matches per tuple double as a (capped) match probability.
    matches, _ = _scan_estimate(literal, bound, statistics, False)
    return max(_MIN_PASS_RATE, 1.0 - min(1.0, matches))


def _body_filters(builtins, negations):
    """The placeable-filter descriptors the cost simulation consults.

    Each is ``(kind, literal, needed)`` where ``needed`` is the variable set
    that must be positively bound before the filter applies (named variables
    only under negation, matching the placement legality rule).
    """
    filters = []
    for _, literal in builtins:
        filters.append(("builtin", literal, frozenset(literal.variables())))
    for _, literal in negations:
        named = frozenset(v for v in literal.variables() if not v.is_anonymous)
        filters.append(("neg", literal, named))
    return filters


def _cost_step(entry, bound, frontier, statistics, filters, delta_indexes):
    """Cost one candidate scan from a simulation state.

    Returns ``(step_cost, new_bound, new_frontier, est_rows, positions)``.
    A step pays one probe plus the rows it enumerates per live binding
    tuple; filters that become placeable once the step's variables are
    bound shrink the frontier immediately (they attach to the earliest
    legal point -- the frontier only ever grows later, so earliest is also
    the cheapest placement and needs no search of its own).
    """
    index, literal = entry
    est, positions = _scan_estimate(
        literal, bound, statistics, index in delta_indexes
    )
    cost = frontier * (1.0 + est)
    new_bound = bound | set(literal.variables())
    new_frontier = frontier * max(est, _FRONTIER_FLOOR)
    for kind, flit, needed in filters:
        if needed <= new_bound and not needed <= bound:
            new_frontier *= _filter_pass_rate(kind, flit, new_bound, statistics)
    return cost, new_bound, new_frontier, est, positions


def _cost_order(entries, initial_bound, statistics, filters, delta_indexes, forced=None):
    """Order scan entries by estimated total cost.

    ``forced`` (the seminaive delta occurrence) is pinned outermost -- the
    delta drives the round -- and only the *residual* join is searched,
    exactly the textbook delta-as-driver costing.  Up to :data:`_DP_LIMIT`
    residual literals the search is exact dynamic programming over subsets
    (best cost per joined set, Selinger-style); beyond that, greedy with a
    one-step lookahead.  Ties are broken deterministically toward textual
    body order.
    """
    bound = frozenset(initial_bound)
    cost0, frontier0 = 0.0, 1.0
    ordered: List[Tuple[int, Literal]] = []
    if forced is not None:
        cost0, bound, frontier0, _, _ = _cost_step(
            forced, bound, frontier0, statistics, filters, delta_indexes
        )
        ordered.append(forced)
    remaining = list(entries)
    if not remaining:
        return ordered
    if len(remaining) <= _DP_LIMIT:
        n = len(remaining)
        states = {0: (cost0, frontier0, bound, ())}
        for mask in range((1 << n) - 1):
            state = states.get(mask)
            if state is None:
                continue
            cost, frontier, known, order = state
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                step_cost, nb, nf, _, _ = _cost_step(
                    remaining[i], known, frontier, statistics, filters, delta_indexes
                )
                total = cost + step_cost
                prev = states.get(mask | bit)
                if prev is None or total < prev[0]:
                    states[mask | bit] = (total, nf, nb, order + (i,))
        _, _, _, order = states[(1 << n) - 1]
        ordered.extend(remaining[i] for i in order)
        return ordered
    cost, frontier, known = cost0, frontier0, bound
    while remaining:
        best = None
        for i, entry in enumerate(remaining):
            step_cost, nb, nf, _, _ = _cost_step(
                entry, known, frontier, statistics, filters, delta_indexes
            )
            lookahead = 0.0
            if len(remaining) > 1:
                lookahead = min(
                    _cost_step(
                        other, nb, nf, statistics, filters, delta_indexes
                    )[0]
                    for j, other in enumerate(remaining)
                    if j != i
                )
            key = (step_cost + lookahead, entry[0])
            if best is None or key < best[0]:
                best = (key, i, nb, nf)
        _, i, known, frontier = best
        ordered.append(remaining.pop(i))
    return ordered


def estimated_body_cost(
    body: Sequence[Literal],
    statistics,
    bound_vars: FrozenSet[Variable] = frozenset(),
) -> float:
    """The cost model's estimated total cost of one evaluation of ``body``.

    Orders the body with :func:`_cost_order` against ``statistics`` (a
    :class:`repro.stats.PlanStatistics`) and sums the per-step costs --
    probes plus enumerated rows.  The absolute number is in arbitrary
    "row visits" units; it is meaningful only relative to other bodies
    estimated against the same statistics, which is exactly how
    :func:`repro.core.planner.estimate_strategy_costs` uses it.
    """
    scans: List[Tuple[int, Literal]] = []
    builtins: List[Tuple[int, Literal]] = []
    negations: List[Tuple[int, Literal]] = []
    for index, literal in enumerate(body):
        if literal.is_builtin:
            builtins.append((index, literal))
        elif literal.negated:
            negations.append((index, literal))
        else:
            scans.append((index, literal))
    filters = _body_filters(builtins, negations)
    ordered = _cost_order(scans, bound_vars, statistics, filters, frozenset())
    bound = frozenset(bound_vars)
    frontier = 1.0
    total = 0.0
    for entry in ordered:
        cost, bound, frontier, _, _ = _cost_step(
            entry, bound, frontier, statistics, filters, frozenset()
        )
        total += cost
    return total


def _estimate_steps(ordered, initial_bound, statistics, filters, delta_indexes):
    """Per-step :class:`StepEstimate` records for the chosen order."""
    bound = frozenset(initial_bound)
    frontier = 1.0
    estimates: List[StepEstimate] = []
    for entry in ordered:
        _, bound, frontier, est, positions = _cost_step(
            entry, bound, frontier, statistics, filters, delta_indexes
        )
        estimates.append(StepEstimate(entry[1], positions, est, frontier))
    return tuple(estimates)


# -- compilation -----------------------------------------------------------


def compile_plan(
    body: Sequence[Literal],
    head: Optional[Literal] = None,
    bound_vars: FrozenSet[Variable] = frozenset(),
    derived_only_for: FrozenSet[str] = frozenset(),
    has_derived: bool = False,
    delta_predicates: FrozenSet[str] = frozenset(),
    delta_occurrence: Optional[int] = None,
    delta_first: bool = False,
    statistics=None,
) -> JoinPlan:
    """Analyse ``body`` once and build an executable :class:`JoinPlan`.

    ``bound_vars`` are the variables the caller will bind through ``initial``
    at execution time (their *identity* shapes the plan; their values do
    not).  ``delta_predicates``/``delta_occurrence`` select the seminaive
    variant: the ``delta_occurrence``-th occurrence (in textual body order)
    of a literal over ``delta_predicates`` reads the secondary database only,
    every other literal reads the primary one.

    ``delta_first`` additionally forces the chosen delta occurrence to be the
    *outermost* scan, with the remaining literals reordered greedily around
    it.  This is the textbook seminaive join order -- drive the round from
    the (small) delta so the work is proportional to the delta, not to the
    full relations -- and is what the incremental resume path uses.  The
    historical engine loops keep the default (purely greedy) order, whose
    work counters are pinned on the paper samples.

    ``statistics`` (a :class:`repro.stats.PlanStatistics` view, supplied by
    the cached builders under ``set_plan_mode("cost")``) switches the scan
    ordering from the greedy bound-count heuristic to the estimated-cost
    search of :func:`_cost_order`: the delta occurrence -- when one exists
    -- is always the driver and only the residual join is searched, and the
    chosen order's per-step estimates are kept on the plan (``.estimates``)
    for :meth:`JoinPlan.explain`.  Builtin and negation *placement* stays
    earliest-point in both modes: the frontier is non-decreasing along a
    plan, so the earliest legal point minimises both the filter's own
    probes and every later step's input -- the cost search instead orders
    scans so that selective filters become placeable early.
    """
    body = tuple(body)
    scans: List[Tuple[int, Literal]] = []
    builtins: List[Tuple[int, Literal]] = []
    negations: List[Tuple[int, Literal]] = []
    for index, literal in enumerate(body):
        if literal.is_builtin:
            if literal.arity != 2:
                raise EvaluationError(
                    f"built-in literal {literal} must have exactly two arguments"
                )
            builtins.append((index, literal))
        elif literal.negated:
            negations.append((index, literal))
        else:
            scans.append((index, literal))

    # Scan order.  Legacy: greedy sideways-information-passing -- repeatedly
    # pick the literal with the most bound argument positions, ties falling
    # back to textual order.  Cost mode (``statistics`` given): estimated-
    # cost search, delta occurrence pinned as the driver.
    bound: Set[Variable] = set(bound_vars)
    ordered: List[Tuple[int, Literal]] = []
    remaining = list(scans)
    forced_delta: Optional[Tuple[int, Literal]] = None
    if delta_occurrence is not None and (delta_first or statistics is not None):
        seen_delta = 0
        for entry in scans:
            if entry[1].predicate in delta_predicates:
                if seen_delta == delta_occurrence:
                    forced_delta = entry
                    remaining.remove(entry)
                    break
                seen_delta += 1
    estimates: Optional[Tuple[StepEstimate, ...]] = None
    if statistics is not None:
        filters = _body_filters(builtins, negations)
        delta_indexes = frozenset()
        if forced_delta is not None:
            delta_indexes = frozenset((forced_delta[0],))
        ordered = _cost_order(
            remaining, bound, statistics, filters, delta_indexes, forced_delta
        )
        estimates = _estimate_steps(
            ordered, bound_vars, statistics, filters, delta_indexes
        )
        for entry in ordered:
            bound.update(entry[1].variables())
    else:
        if forced_delta is not None:
            ordered.append(forced_delta)
            bound.update(forced_delta[1].variables())
        while remaining:
            def bound_count(entry: Tuple[int, Literal]) -> Tuple[int, int]:
                _, literal = entry
                count = 0
                for term in literal.args:
                    if isinstance(term, Constant) or term in bound:
                        count += 1
                return (count, -entry[0])

            best = max(remaining, key=bound_count)
            remaining.remove(best)
            ordered.append(best)
            bound.update(best[1].variables())

    # Slot assignment: caller-bound variables first (sorted for determinism
    # across call sites sharing the cached plan), then first occurrence order.
    slot_of: Dict[Variable, int] = {}
    for var in sorted(bound_vars, key=lambda v: v.name):
        slot_of[var] = len(slot_of)
    for _, literal in ordered:
        for var in literal.variables():
            if var not in slot_of:
                slot_of[var] = len(slot_of)
    if head is not None:
        for var in head.variables():
            if var not in slot_of:
                slot_of[var] = len(slot_of)

    # Built-in / negation placement: the earliest step after which all
    # variables are bound.  Position 0 means "before any scan" (ground under
    # bound_vars).  Negated literals are anti-join filters: they never bind
    # anything, so -- like built-ins -- they attach to the first point at
    # which the positive body has bound their argument vector, and a negated
    # literal that can never become ground is rejected at plan time.
    # Anonymous variables under negation are exempt from that requirement:
    # they are existentially quantified inside the anti-join, so only the
    # *named* variables of a negated literal must be positively bound.
    available: List[Set[Variable]] = [set(bound_vars)]
    for _, literal in ordered:
        available.append(available[-1] | set(literal.variables()))
    placement: Dict[int, List[Tuple[int, Literal]]] = {}
    for index, literal in builtins:
        variables = set(literal.variables())
        for position, known in enumerate(available):
            if variables <= known:
                placement.setdefault(position, []).append((index, literal))
                break
        else:
            raise EvaluationError(f"built-in literal {literal} never becomes ground")
    neg_placement: Dict[int, List[Tuple[int, Literal]]] = {}
    for index, literal in negations:
        variables = {v for v in literal.variables() if not v.is_anonymous}
        for position, known in enumerate(available):
            if variables <= known:
                neg_placement.setdefault(position, []).append((index, literal))
                break
        else:
            raise EvaluationError(
                f"negated literal {literal} is not bound by the positive body"
            )

    # Delta occurrence indexes count non-builtin delta-predicate literals in
    # textual body order, matching the historical seminaive convention.
    occurrence_of: Dict[int, int] = {}
    seen = 0
    for index, literal in scans:
        if literal.predicate in delta_predicates:
            occurrence_of[index] = seen
            seen += 1
    if delta_occurrence is not None and delta_occurrence >= seen:
        raise EvaluationError(
            f"body has {seen} delta occurrences, cannot build variant {delta_occurrence}"
        )

    pre_checks = tuple(
        BuiltinCheck(literal, slot_of)
        for _, literal in sorted(placement.get(0, []), key=lambda e: e[0])
    )
    pre_negs = tuple(
        NegationCheck(literal, slot_of, available[0])
        for _, literal in sorted(neg_placement.get(0, []), key=lambda e: e[0])
    )
    steps: List[ScanStep] = []
    bound_so_far: Set[Variable] = set(bound_vars)
    for position, (index, literal) in enumerate(ordered):
        if delta_occurrence is not None and occurrence_of.get(index) == delta_occurrence:
            source = SOURCE_DERIVED
        elif literal.predicate in derived_only_for:
            source = SOURCE_DERIVED
        elif has_derived:
            source = SOURCE_BOTH
        else:
            source = SOURCE_MAIN
        step = ScanStep(literal, source, slot_of, bound_so_far)
        step.checks = tuple(
            BuiltinCheck(check_literal, slot_of)
            for _, check_literal in sorted(
                placement.get(position + 1, []), key=lambda e: e[0]
            )
        )
        step.neg_checks = tuple(
            NegationCheck(neg_literal, slot_of, available[position + 1])
            for _, neg_literal in sorted(
                neg_placement.get(position + 1, []), key=lambda e: e[0]
            )
        )
        steps.append(step)
        bound_so_far.update(literal.variables())

    plan = JoinPlan(
        body, head, frozenset(bound_vars), slot_of, pre_checks, tuple(steps), pre_negs
    )
    plan.estimates = estimates
    return plan


# -- plan cache ------------------------------------------------------------

_PLAN_CACHE: Dict[tuple, JoinPlan] = {}
_PLAN_CACHE_LIMIT = 8192


def _cached_plan(key: tuple, build: Callable[[], JoinPlan]) -> JoinPlan:
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.clear()
        plan = build()
        _PLAN_CACHE[key] = plan
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan (test isolation helper)."""
    _PLAN_CACHE.clear()
    _IMAGE_CACHE.clear()


def _body_statistics(body: Sequence[Literal], database, overrides=None):
    """``(PlanStatistics, cache-key suffix)`` when the cost planner applies.

    Returns ``(None, ())`` under the legacy plan mode or when the caller
    supplied no database to measure -- in which case the builders' cache
    keys (and plans) are byte-identical to the historical ones.  In cost
    mode the suffix is the coarse cardinality fingerprint of the body's
    relations, so cached cost-based plans are reused while relative sizes
    hold and recompiled only when a relation crosses a power-of-two
    boundary (or an override -- an observed delta size -- does).
    """
    if _plan_mode != _PLAN_COST or database is None:
        return None, ()
    from ..stats import PlanStatistics

    statistics = PlanStatistics(database, overrides)
    predicates = [
        literal.predicate for literal in body if not literal.is_builtin
    ]
    return statistics, ("cost", statistics.fingerprint(predicates))


def body_plan(
    body: Sequence[Literal],
    bound_vars: FrozenSet[Variable] = frozenset(),
    derived_only_for: FrozenSet[str] = frozenset(),
    has_derived: bool = False,
    database=None,
) -> JoinPlan:
    """Cached plan for a bare body (the :func:`satisfy_body` entry point)."""
    body = tuple(body)
    statistics, suffix = _body_statistics(body, database)
    key = ("body", body, bound_vars, derived_only_for, has_derived) + suffix
    return _cached_plan(
        key,
        lambda: compile_plan(
            body,
            bound_vars=bound_vars,
            derived_only_for=derived_only_for,
            has_derived=has_derived,
            statistics=statistics,
        ),
    )


def rule_plan(
    rule: Rule,
    bound_vars: FrozenSet[Variable] = frozenset(),
    derived_only_for: FrozenSet[str] = frozenset(),
    has_derived: bool = False,
    database=None,
) -> JoinPlan:
    """Cached plan for a full rule (the :func:`instantiate_rule` entry point)."""
    statistics, suffix = _body_statistics(rule.body, database)
    key = ("rule", rule, bound_vars, derived_only_for, has_derived) + suffix
    return _cached_plan(
        key,
        lambda: compile_plan(
            rule.body,
            head=rule.head,
            bound_vars=bound_vars,
            derived_only_for=derived_only_for,
            has_derived=has_derived,
            statistics=statistics,
        ),
    )


def delta_plan(
    rule: Rule,
    delta_predicates: FrozenSet[str],
    delta_occurrence: int,
    delta_first: bool = False,
    database=None,
    overrides=None,
) -> JoinPlan:
    """Cached seminaive variant: one plan per recursive-occurrence index.

    In cost mode ``overrides`` carries assumed cardinalities -- the
    adaptive re-planner passes the observed delta size for the recursive
    predicates, so the residual join is costed against the delta that
    actually drives it rather than the full relation.
    """
    statistics, suffix = _body_statistics(rule.body, database, overrides)
    key = ("delta", rule, delta_predicates, delta_occurrence, delta_first) + suffix
    return _cached_plan(
        key,
        lambda: compile_plan(
            rule.body,
            head=rule.head,
            delta_predicates=delta_predicates,
            delta_occurrence=delta_occurrence,
            delta_first=delta_first,
            statistics=statistics,
        ),
    )


def delta_plans(
    rule: Rule,
    delta_predicates: FrozenSet[str],
    delta_first: bool = False,
    database=None,
    overrides=None,
) -> List[JoinPlan]:
    """All delta variants of ``rule``: one per recursive body occurrence."""
    occurrences = sum(
        1
        for literal in rule.body
        if not literal.is_builtin
        and not literal.negated
        and literal.predicate in delta_predicates
    )
    return [
        delta_plan(rule, delta_predicates, k, delta_first, database, overrides)
        for k in range(occurrences)
    ]


# -- aggregate folds --------------------------------------------------------


class AggregateFold:
    """An aggregate rule compiled to a post-fixpoint fold operator.

    For a rule such as ``sp(X, Y, min(C)) :- path(X, Y, C).`` the fold runs
    the body's join plan (compiled or interpreted, following the global
    execution mode), groups the satisfying substitutions by the head's plain
    terms and folds, per group, the *set of distinct values* each aggregated
    variable takes -- Datalog is set-based, so this is the only well-defined
    reading (``sum`` sums distinct values, ``count`` counts them).

    Stratification guarantees every body predicate is fully evaluated before
    the fold's stratum starts, so a fold fires exactly once per stratum
    evaluation: its result cannot change during the stratum's own fixpoint.
    """

    __slots__ = ("rule", "plan", "group_template", "aggregates")

    def __init__(self, rule: Rule):
        if not rule.is_aggregate:
            raise EvaluationError(f"rule {rule} has no aggregate head")
        self.rule = rule
        self.plan = compile_plan(rule.body, head=None)
        bound = {var for var, _ in self.plan.out_vars}
        # Head template: (kind, payload) per head position, where kind is
        # "const" / "var" / "agg" and aggregates index into self.aggregates.
        template: List[Tuple[str, object]] = []
        aggregates: List[Tuple[Callable, Variable]] = []
        for term in rule.head.args:
            if isinstance(term, AggregateTerm):
                if term.var not in bound:
                    raise EvaluationError(
                        f"aggregated variable {term.var} of {rule} is not bound "
                        "by the rule body"
                    )
                template.append(("agg", len(aggregates)))
                aggregates.append((AGGREGATE_FUNCTIONS[term.func], term.var))
            elif isinstance(term, Constant):
                template.append(("const", term.value))
            else:
                if term not in bound:
                    raise EvaluationError(
                        f"group variable {term} of {rule} is not bound by the rule body"
                    )
                template.append(("var", term))
        self.group_template = tuple(template)
        self.aggregates = tuple(aggregates)

    def heads(self, database: Database) -> Iterator[Row]:
        """Enumerate the folded head rows over the current database.

        Groups are emitted in first-seen order of the underlying join plan,
        so the output order is as deterministic as the plan's.
        """
        group_vars = tuple(
            payload for kind, payload in self.group_template if kind == "var"
        )
        groups: Dict[Tuple[object, ...], List[Set[object]]] = {}
        for substitution in self.plan.substitutions(database):
            key = tuple(substitution[var] for var in group_vars)
            sets = groups.get(key)
            if sets is None:
                sets = groups[key] = [set() for _ in self.aggregates]
            for index, (_, var) in enumerate(self.aggregates):
                sets[index].add(substitution[var])
        for key, sets in groups.items():
            folded = tuple(
                fold(values)
                for (fold, _), values in zip(self.aggregates, sets)
            )
            row: List[object] = []
            position = 0
            for kind, payload in self.group_template:
                if kind == "const":
                    row.append(payload)
                elif kind == "var":
                    row.append(key[position])
                    position += 1
                else:
                    row.append(folded[payload])
            yield tuple(row)


def aggregate_plan(rule: Rule) -> AggregateFold:
    """Cached fold operator for an aggregate rule."""
    return _cached_plan(("fold", rule), lambda: AggregateFold(rule))


# -- compiled relational-algebra images ------------------------------------

ImageFunction = Callable[[Set[object], Database, "object"], Set[object]]

_IMAGE_CACHE: Dict[object, ImageFunction] = {}


def compile_image(expression) -> ImageFunction:
    """Compile a relalg expression into a reusable node-set image function.

    The returned callable has the signature ``(values, database, counters) ->
    set`` and reproduces the historical per-application expression walker of
    the Henschen-Naqvi engine exactly -- including its per-application
    ``nodes_generated`` charging -- but the expression structure is walked
    once at compile time instead of once per application, and base-predicate
    images drive :meth:`~repro.datalog.database.Database.image`: one
    adjacency-bucket union per frontier value on the interned storage kernel
    (or the historical per-row :meth:`~repro.datalog.database.Database.scan`
    loop under the ``"reference"`` storage mode), charged identically either
    way.
    """
    from ..relalg.expressions import Compose, Empty, Identity, Inverse, Pred, Star, Union
    from .errors import NotApplicableError

    if expression is None:
        return lambda values, database, counters: set(values)
    cached = _IMAGE_CACHE.get(expression)
    if cached is not None:
        return cached
    if len(_IMAGE_CACHE) >= _PLAN_CACHE_LIMIT:
        _IMAGE_CACHE.clear()

    compiled: ImageFunction
    if isinstance(expression, Identity):

        def compiled(values, database, counters):
            return set(values)

    elif isinstance(expression, Empty):

        def compiled(values, database, counters):
            return set()

    elif isinstance(expression, Pred):
        name = expression.name

        def compiled(values, database, counters, _name=name):
            result = database.image(_name, values)
            counters.nodes_generated += len(result)
            return result

    elif isinstance(expression, Inverse):
        inner = expression.inner
        if not isinstance(inner, Pred):
            raise NotApplicableError(
                "image compilation supports inverses of base predicates only"
            )
        name = inner.name

        def compiled(values, database, counters, _name=name):
            result = database.image(_name, values, inverted=True)
            counters.nodes_generated += len(result)
            return result

    elif isinstance(expression, Union):
        items = tuple(compile_image(item) for item in expression.items)

        def compiled(values, database, counters, _items=items):
            result: Set[object] = set()
            for item in _items:
                result |= item(values, database, counters)
            return result

    elif isinstance(expression, Compose):
        items = tuple(compile_image(item) for item in expression.items)

        def compiled(values, database, counters, _items=items):
            current = set(values)
            for item in _items:
                current = item(current, database, counters)
                if not current:
                    break
            return current

    elif isinstance(expression, Star):
        inner_fn = compile_image(expression.inner)

        def compiled(values, database, counters, _inner=inner_fn):
            current = set(values)
            reached = set(values)
            while current:
                current = _inner(current, database, counters) - reached
                reached |= current
            return reached

    else:
        raise NotApplicableError(f"unsupported expression node {expression!r}")

    _IMAGE_CACHE[expression] = compiled
    return compiled
