"""Rules and programs.

A Datalog program (Section 2 of the paper) is a finite set of rules

    p0(X0) :- p1(X1), p2(X2), ..., pn(Xn)

A rule with an empty body and an all-constant head is a *fact*; the set of
facts is the *extensional database* (EDB) and the remaining rules form the
*intensional database* (IDB).  Predicates appearing in facts are *base*
predicates, predicates appearing in the head of a rule with a non-empty body
are *derived* predicates, and the two sets must be disjoint.

:class:`Program` stores the rules, computes the base/derived split, validates
the structural requirements (disjointness, consistent arities, safety) and
offers the classification helpers that Section 2 defines on individual rules
(binary-chain rule, linear rule).  Whole-program classification that needs
the mutual-recursion relation (recursive, linear, regular, binary-chain
*programs*) lives in :mod:`repro.datalog.analysis`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .errors import ProgramValidationError, UnsafeRuleError
from .literals import Literal
from .terms import Variable


class Rule:
    """A single Horn clause ``head :- body``.

    Instances are immutable and hashable.  A rule with an empty body whose
    head is ground is a *fact* (:attr:`is_fact`).
    """

    __slots__ = ("head", "body", "_hash", "span")

    def __init__(self, head: Literal, body: Sequence[Literal] = ()):
        self.span = None  # source location metadata, set by the parser
        if head.is_builtin:
            raise ProgramValidationError(
                f"built-in predicate {head.predicate!r} cannot appear in a rule head"
            )
        if head.negated:
            raise ProgramValidationError(
                f"negated literal {head} cannot appear in a rule head"
            )
        self.head = head
        self.body: Tuple[Literal, ...] = tuple(body)
        for lit in self.body:
            if lit.has_aggregate:
                raise ProgramValidationError(
                    f"aggregate terms are only legal in rule heads, not in body literal {lit}"
                )
        if head.has_aggregate and not self.body:
            raise ProgramValidationError(
                f"aggregate head {head} requires a non-empty body to fold over"
            )
        self._hash = hash((self.head, self.body))

    # -- structural properties ---------------------------------------------

    @property
    def is_fact(self) -> bool:
        """True for a rule with an empty body and an all-constant head."""
        return not self.body and self.head.is_ground

    @property
    def body_predicates(self) -> Tuple[str, ...]:
        """Predicate names occurring in the body, in order, builtins included."""
        return tuple(lit.predicate for lit in self.body)

    def positive_body(self) -> Tuple[Literal, ...]:
        """Body literals that are neither built-in comparisons nor negated.

        These are the literals that *bind* variables by scanning stored
        relations; negated literals and built-ins only filter.
        """
        return tuple(
            lit for lit in self.body if not lit.is_builtin and not lit.negated
        )

    def negated_body(self) -> Tuple[Literal, ...]:
        """The negated body literals (anti-join filters), left to right."""
        return tuple(lit for lit in self.body if lit.negated)

    def builtin_body(self) -> Tuple[Literal, ...]:
        """Body literals that are built-in comparisons."""
        return tuple(lit for lit in self.body if lit.is_builtin)

    @property
    def is_aggregate(self) -> bool:
        """True when the head carries at least one aggregate term."""
        return self.head.has_aggregate

    def variables(self) -> Set[Variable]:
        """All variables occurring anywhere in the rule.

        The variables inside aggregate head terms count: they range over the
        body like any other variable, only their head occurrence folds.
        """
        result: Set[Variable] = set(self.head.variables())
        result.update(term.var for term in self.head.aggregate_terms())
        for lit in self.body:
            result.update(lit.variables())
        return result

    def is_safe(self) -> bool:
        """Safety: every head / built-in / negated variable is positively bound.

        Facts are trivially safe.  This is the restriction the paper imposes
        ("unsafe built-in predicates must not be allowed") extended with the
        usual range-restriction on head variables, on the variables of
        negated body literals (so anti-joins range over bound tuples only)
        and on the grouped and aggregated variables of aggregate heads.

        Anonymous variables (``_``) inside *negated* literals are exempt:
        they are existentially quantified within the anti-join
        (``s(X) :- n(X), not e(X, _).`` asks that no ``e(X, *)`` row exist),
        so they need no positive binding.  Everywhere else -- heads,
        built-ins, aggregates -- an anonymous variable is as unsafe as any
        other unbound variable.
        """
        bound: Set[Variable] = set()
        for lit in self.positive_body():
            bound.update(lit.variables())
        if not self.body:
            return self.head.is_ground
        head_ok = all(v in bound for v in self.head.variables())
        aggregate_ok = all(
            term.var in bound for term in self.head.aggregate_terms()
        )
        builtin_ok = all(
            all(v in bound for v in lit.variables()) for lit in self.builtin_body()
        )
        negated_ok = all(
            all(v in bound for v in lit.variables() if not v.is_anonymous)
            for lit in self.negated_body()
        )
        return head_ok and aggregate_ok and builtin_ok and negated_ok

    # -- Section 2 rule classes ---------------------------------------------

    def is_binary_chain_rule(self) -> bool:
        """True for a rule of the binary-chain form.

        ``p(X1, Xn+1) :- p1(X1, X2), p2(X2, X3), ..., pn(Xn, Xn+1)`` with all
        the ``X1 .. Xn+1`` distinct variables and ``n >= 0`` (an empty body is
        allowed when the head is of the form ``p(X, X)``, which is how the
        reflexivity rule of ``*`` is written).
        """
        if self.head.arity != 2:
            return False
        if any(not t.is_variable for t in self.head.args):
            return False
        x_first, x_last = self.head.args
        if not self.body:
            # p*(X, X) :-   -- the degenerate chain of length 0.
            return x_first == x_last
        chain_vars: List[Variable] = [x_first]  # type: ignore[list-item]
        for lit in self.body:
            if lit.is_builtin or lit.negated or lit.arity != 2:
                return False
            left, right = lit.args
            if not (left.is_variable and right.is_variable):
                return False
            if left != chain_vars[-1]:
                return False
            chain_vars.append(right)  # type: ignore[arg-type]
        if chain_vars[-1] != x_last:
            return False
        return len(set(chain_vars)) == len(chain_vars)

    def count_occurrences(self, predicates: Set[str]) -> int:
        """Number of body literals whose predicate belongs to ``predicates``."""
        return sum(1 for lit in self.body if lit.predicate in predicates)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Rule) and self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {list(self.body)!r})"

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(lit) for lit in self.body)
        return f"{self.head} :- {body}."


class Program:
    """A finite set of rules, split into extensional and intensional parts.

    Parameters
    ----------
    rules:
        The rules, facts included.  Order is preserved (it is occasionally
        meaningful for reproducing the paper's worked examples verbatim) but
        equality of programs ignores it.
    validate:
        When true (the default) the constructor checks the structural
        requirements of Section 2 and raises
        :class:`~repro.datalog.errors.ProgramValidationError` on violation.
    """

    def __init__(self, rules: Iterable[Rule], validate: bool = True):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._arities: Dict[str, int] = {}
        self._base: Set[str] = set()
        self._derived: Set[str] = set()
        self._rules_by_head: Dict[str, List[Rule]] = {}
        self.has_negation = any(lit.negated for r in self.rules for lit in r.body)
        self.has_aggregation = any(r.is_aggregate for r in self.rules)
        self._classify()
        if validate:
            self._validate()

    @property
    def is_positive(self) -> bool:
        """True for plain positive Datalog: no negation, no aggregation.

        Positive programs run as the 1-stratum special case of the stratified
        runtime (:mod:`repro.engines.runtime`); everything non-positive needs
        a stratification (:class:`repro.datalog.analysis.Stratification`).
        """
        return not (self.has_negation or self.has_aggregation)

    # -- construction helpers -------------------------------------------------

    def _classify(self) -> None:
        for rule in self.rules:
            self._check_arity(rule.head)
            for lit in rule.body:
                if not lit.is_builtin:
                    self._check_arity(lit)
            if rule.body:
                self._derived.add(rule.head.predicate)
            self._rules_by_head.setdefault(rule.head.predicate, []).append(rule)
        for rule in self.rules:
            if not rule.body:
                pred = rule.head.predicate
                if pred not in self._derived:
                    self._base.add(pred)
        # Predicates that only ever occur in bodies are base relations too
        # (their facts may live in an external Database object).
        for rule in self.rules:
            for lit in rule.body:
                if lit.is_builtin:
                    continue
                pred = lit.predicate
                if pred not in self._derived:
                    self._base.add(pred)

    def _check_arity(self, literal: Literal) -> None:
        known = self._arities.get(literal.predicate)
        if known is None:
            self._arities[literal.predicate] = literal.arity
        elif known != literal.arity:
            from .diagnostics import Diagnostic, Severity

            raise ProgramValidationError(
                f"predicate {literal.predicate!r} used with arities {known} and {literal.arity}",
                diagnostic=Diagnostic(
                    code="DL204",
                    severity=Severity.ERROR,
                    message=(
                        f"predicate {literal.predicate!r} used with arities "
                        f"{known} and {literal.arity}"
                    ),
                    span=literal.span,
                ),
            )

    def _validate(self) -> None:
        # Imported lazily: diagnostics imports this module at top level.
        from .diagnostics import Diagnostic, Severity, rule_safety_diagnostics

        # Section 2 forbids a predicate from being both base and derived:
        # "no base predicate appears in the head of a rule with a nonempty
        # body".  A predicate with at least one fact and at least one proper
        # rule violates this.
        with_facts = {r.head.predicate for r in self.rules if not r.body}
        overlap = with_facts & self._derived
        if overlap:
            name = sorted(overlap)[0]
            witness = next(
                (r for r in self.rules if not r.body and r.head.predicate == name),
                None,
            )
            raise ProgramValidationError(
                f"predicate {name!r} is used both as a base and as a derived predicate",
                diagnostic=Diagnostic(
                    code="DL205",
                    severity=Severity.ERROR,
                    message=(
                        f"predicate {name!r} is used both as a base and as a "
                        "derived predicate"
                    ),
                    span=witness.span if witness is not None else None,
                    rule=str(witness) if witness is not None else None,
                ),
            )
        for rule in self.rules:
            if not rule.body and not rule.head.is_ground:
                diagnostics = rule_safety_diagnostics(rule)
                raise ProgramValidationError(
                    f"rule {rule} has an empty body but a non-ground head",
                    diagnostic=diagnostics[0] if diagnostics else None,
                )
            if not rule.is_safe():
                diagnostics = rule_safety_diagnostics(rule)
                raise UnsafeRuleError(
                    f"rule {rule} is unsafe",
                    diagnostic=diagnostics[0] if diagnostics else None,
                )

    # -- predicate sets ---------------------------------------------------------

    @property
    def base_predicates(self) -> Set[str]:
        """Predicates that only occur in facts or rule bodies (EDB relations)."""
        return set(self._base)

    @property
    def derived_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule with a non-empty body."""
        return set(self._derived)

    @property
    def predicates(self) -> Set[str]:
        """All non-built-in predicates mentioned anywhere in the program."""
        return set(self._arities)

    def arity(self, predicate: str) -> int:
        """Declared arity of ``predicate``.

        Raises ``KeyError`` for unknown predicates.
        """
        return self._arities[predicate]

    # -- rule access -------------------------------------------------------------

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """All rules (facts included) whose head predicate is ``predicate``."""
        return tuple(self._rules_by_head.get(predicate, ()))

    def idb_rules(self) -> Tuple[Rule, ...]:
        """The intensional database: rules with a non-empty body."""
        return tuple(r for r in self.rules if r.body)

    def edb_facts(self) -> Tuple[Rule, ...]:
        """The extensional database: facts embedded in the program text."""
        return tuple(r for r in self.rules if not r.body)

    def is_binary(self) -> bool:
        """True when every non-built-in predicate is binary."""
        return all(a == 2 for p, a in self._arities.items() if p not in (">", "<"))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __eq__(self, other) -> bool:
        return isinstance(other, Program) and set(self.rules) == set(other.rules)

    def __hash__(self) -> int:
        return hash(frozenset(self.rules))

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"

    # -- convenience constructors --------------------------------------------------

    def extended(self, extra_rules: Iterable[Rule]) -> "Program":
        """A new program with ``extra_rules`` appended."""
        return Program(list(self.rules) + list(extra_rules))

    def without_facts(self) -> "Program":
        """A new program containing only the intensional rules."""
        return Program(self.idb_rules(), validate=False)


def rule(head: Literal, *body: Literal) -> Rule:
    """Terse constructor: ``rule(h, b1, b2)`` instead of ``Rule(h, [b1, b2])``."""
    return Rule(head, body)


def program_from_rules(*rules_: Rule) -> Program:
    """Terse constructor for a :class:`Program` from individual rules."""
    return Program(rules_)
