"""Literals: a predicate name applied to a vector of terms.

Section 2 of the paper: "each ``p_i(X_i)`` is called a *literal*, and ``X_i``
is its *argument vector*".  We additionally support the built-in comparison
predicates (``<``, ``<=``, ``>``, ``>=``, ``=``, ``!=``) that the paper's
flight-connections example of Section 4 uses (``AT1 < DT1``).  Built-in
literals are evaluated, never stored, and are only legal when their arguments
are bound at evaluation time (the paper's safety requirement: "unsafe
built-in predicates must not be allowed").
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Iterable, Sequence, Tuple

from .terms import AggregateTerm, Constant, Term, TermLike, Variable, make_term

#: The built-in comparison predicates and their Python implementations.
BUILTIN_PREDICATES: Dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
}


class Literal:
    """An atom ``p(t1, ..., tn)``.

    Instances are immutable and hashable.  The constructor coerces raw Python
    values in ``args`` through :func:`repro.datalog.terms.make_term`, so both
    of the following are accepted and equivalent::

        Literal("up", [Variable("X"), Constant("a")])
        Literal("up", ["X", "a"])
    """

    __slots__ = ("predicate", "args", "negated", "_hash", "span")

    def __init__(
        self, predicate: str, args: Sequence[TermLike] = (), negated: bool = False
    ):
        if not isinstance(predicate, str) or not predicate:
            raise ValueError("predicate name must be a non-empty string")
        self.span = None  # source location metadata, set by the parser
        self.predicate = predicate
        self.args: Tuple[Term, ...] = tuple(make_term(a) for a in args)
        self.negated = bool(negated)
        if self.negated and predicate in BUILTIN_PREDICATES:
            raise ValueError(
                f"built-in comparison {predicate!r} cannot be negated; "
                "use the complementary operator instead"
            )
        # Positive literals keep the historical hash so nothing downstream
        # (plan-cache keys, set layouts) moves for pure positive programs.
        self._hash = (
            hash((self.predicate, self.args, True))
            if self.negated
            else hash((self.predicate, self.args))
        )

    # -- basic structural properties -------------------------------------

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    @property
    def is_builtin(self) -> bool:
        """True when the predicate is a built-in comparison."""
        return self.predicate in BUILTIN_PREDICATES

    @property
    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(t.is_constant for t in self.args)

    @property
    def is_binary(self) -> bool:
        """True when the literal has exactly two argument positions."""
        return self.arity == 2

    @property
    def is_positive(self) -> bool:
        """True when the literal is not negated (built-ins are positive)."""
        return not self.negated

    @property
    def has_aggregate(self) -> bool:
        """True when any argument is an :class:`AggregateTerm` (head forms)."""
        return any(isinstance(t, AggregateTerm) for t in self.args)

    def aggregate_terms(self) -> Tuple[AggregateTerm, ...]:
        """The aggregate arguments, left to right (empty for plain literals)."""
        return tuple(t for t in self.args if isinstance(t, AggregateTerm))

    def variables(self) -> Tuple[Variable, ...]:
        """The variables occurring in the argument vector, left to right.

        Duplicates are preserved so that callers can reason about shared
        positions; use ``set(lit.variables())`` for the distinct set.
        """
        return tuple(t for t in self.args if isinstance(t, Variable))

    def constants(self) -> Tuple[Constant, ...]:
        """The constants occurring in the argument vector, left to right."""
        return tuple(t for t in self.args if isinstance(t, Constant))

    def constant_values(self) -> Tuple[object, ...]:
        """The payload values of the argument vector; requires groundness."""
        if not self.is_ground:
            raise ValueError(f"literal {self} is not ground")
        return tuple(t.value for t in self.args)  # type: ignore[union-attr]

    # -- derived literals --------------------------------------------------

    def with_args(self, args: Sequence[TermLike]) -> "Literal":
        """A copy of this literal with a different argument vector."""
        return Literal(self.predicate, args, negated=self.negated)

    def with_predicate(self, predicate: str) -> "Literal":
        """A copy of this literal with a different predicate name."""
        return Literal(predicate, self.args, negated=self.negated)

    def positive(self) -> "Literal":
        """The positive counterpart of this literal (self when not negated)."""
        if not self.negated:
            return self
        return Literal(self.predicate, self.args)

    def evaluate_builtin(self) -> bool:
        """Evaluate a ground built-in comparison literal.

        Raises
        ------
        ValueError
            If the literal is not a built-in, is not binary, or is not ground.
        """
        if not self.is_builtin:
            raise ValueError(f"{self.predicate} is not a built-in predicate")
        if self.arity != 2:
            raise ValueError("built-in comparisons take exactly two arguments")
        if not self.is_ground:
            raise ValueError(f"built-in literal {self} has unbound arguments")
        left, right = self.constant_values()
        return BUILTIN_PREDICATES[self.predicate](left, right)

    # -- shared-variable structure (used by the adornment algorithm) -------

    def shares_variable_with(self, other: "Literal") -> bool:
        """True when the two literals are *directly connected*.

        The paper (Section 4, condition (2)): "Two literals in a rule are
        directly connected if they share a common variable as an argument."
        """
        mine = set(self.variables())
        return any(v in mine for v in other.variables())

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.predicate == other.predicate
            and self.args == other.args
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.negated:
            return f"Literal({self.predicate!r}, {list(self.args)!r}, negated=True)"
        return f"Literal({self.predicate!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        if self.is_builtin and self.arity == 2:
            return f"{self.args[0]} {self.predicate} {self.args[1]}"
        inner = ", ".join(str(a) for a in self.args)
        rendered = f"{self.predicate}({inner})"
        return f"not {rendered}" if self.negated else rendered


def ground_atom(predicate: str, values: Iterable[object]) -> Literal:
    """Build a ground literal directly from raw Python values.

    Unlike the :class:`Literal` constructor, strings are *not* interpreted as
    variables even when capitalised: every value becomes a constant.
    """
    return Literal(predicate, [Constant(v) if not isinstance(v, Constant) else v for v in values])
