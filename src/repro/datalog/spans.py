"""Source spans: where a token, term, literal or rule came from.

Every token produced by :func:`repro.datalog.parser.tokenize` knows its
one-based line *and* column; the parser merges token spans upward so that
terms, literals and rules all carry a :class:`Span` covering exactly the
source text they were read from.  Diagnostics
(:mod:`repro.datalog.diagnostics`) and every parse-time error point at these
spans, so a bad program fails with ``3:14`` instead of ``line 3`` (or, before
column tracking, ``line None`` at end of input).

Spans are *metadata*: they never participate in equality or hashing of the
objects that carry them (two occurrences of ``Variable("X")`` are the same
variable wherever they were read), and programmatically constructed objects
simply have ``span = None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Span:
    """A half-open region of program text, one-based lines and columns.

    ``(line, column)`` is the first character of the region and
    ``(end_line, end_column)`` is one past its last character, mirroring the
    convention of Python's own AST locations (columns there are zero-based;
    ours are one-based, which is what editors display).
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @classmethod
    def point(cls, line: int, column: int) -> "Span":
        """A zero-width span, e.g. the end-of-input position."""
        return cls(line, column, line, column)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max(
            (self.end_line, self.end_column), (other.end_line, other.end_column)
        )
        return Span(start[0], start[1], end[0], end[1])

    @property
    def start(self) -> str:
        """The ``line:column`` rendering of the span's first character."""
        return f"{self.line}:{self.column}"

    def __str__(self) -> str:
        return self.start


def merge_spans(*spans: Optional[Span]) -> Optional[Span]:
    """Merge any number of optional spans; ``None`` when all are ``None``."""
    merged: Optional[Span] = None
    for span in spans:
        if span is None:
            continue
        merged = span if merged is None else merged.merge(span)
    return merged
