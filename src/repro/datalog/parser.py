"""A small parser for textual Datalog programs.

The accepted syntax mirrors the notation of the paper closely::

    % the same generation program (comments start with '%' or '#')
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

    up(a, b).          % facts: ground heads with no body
    flat(b, c).

Conventions
-----------
* identifiers starting with an upper-case letter or ``_`` are **variables**;
  a bare ``_`` is an **anonymous variable** -- every occurrence is a fresh
  variable that never unifies with any other ``_`` (``p(X) :- q(X, _, _).``
  projects the last two columns away independently);
* identifiers starting with a lower-case letter are **constant symbols**
  (their payload is the identifier string);
* integer literals are constants with an ``int`` payload;
* single- or double-quoted strings are constants with a ``str`` payload;
  ``\\"``, ``\\'``, ``\\\\``, ``\\n``, ``\\t`` and ``\\r`` escape sequences
  are resolved, so quotes can appear inside either quoting style;
* the infix comparisons ``<  <=  >  >=  =  !=`` are built-in literals
  (``AT1 < DT1`` in the flight example of Section 4);
* ``not`` before a body literal negates it (stratified negation); ``not`` is
  a reserved word and cannot name a predicate or constant;
* in *argument* position, ``min(C)`` / ``max(C)`` / ``sum(C)`` / ``count(C)``
  denote aggregate terms (legal in rule heads only) and ``t(v1, ..., vn)``
  denotes a tuple constant (the paper's ``t(X^b)`` notation); at the top
  level ``t(...)`` and ``min(...)`` remain ordinary atoms;
* each clause ends with a period.

The parser produces :class:`~repro.datalog.rules.Program` /
:class:`~repro.datalog.rules.Rule` objects; queries (single literals with a
mix of constants and variables, e.g. ``sg(john, Y)``) can be parsed with
:func:`parse_literal`.

Source positions
----------------

Every :class:`Token` records its one-based line *and* column; the parser
threads these upward, so each parsed term, literal and rule carries a
:class:`~repro.datalog.spans.Span` on its ``span`` attribute (metadata only:
equality and hashing of parsed objects ignore spans entirely).  Every
:class:`~repro.datalog.errors.DatalogSyntaxError` points at the offending
token as ``line:column``; at end of input it points one past the last token
instead of reporting no position at all.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Tuple

from .errors import DatalogSyntaxError
from .literals import BUILTIN_PREDICATES, Literal
from .rules import Program, Rule
from .spans import Span, merge_spans
from .terms import (
    AGGREGATE_FUNCTIONS,
    ANONYMOUS_PREFIX,
    AggregateTerm,
    Constant,
    Term,
    Variable,
)

#: Escape sequences accepted inside quoted strings (the inverse of
#: :data:`repro.datalog.terms.STRING_ESCAPES`, plus ``\'``).
_STRING_UNESCAPES = {"\\": "\\", '"': '"', "'": "'", "n": "\n", "t": "\t", "r": "\r"}


def _unquote_string(text: str, span: Optional[Span] = None) -> str:
    """Decode a STRING token's payload, resolving its escape sequences."""
    body = text[1:-1]
    if "\\" not in body:
        return body
    out: List[str] = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\":
            # The token regex guarantees a character follows every backslash.
            escape = body[index + 1]
            resolved = _STRING_UNESCAPES.get(escape)
            if resolved is None:
                raise DatalogSyntaxError(
                    f"unknown string escape \\{escape!s}", span=span
                )
            out.append(resolved)
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)

_TOKEN_SPEC = [
    ("COMMENT", r"(%|#|//)[^\n]*"),
    ("WS", r"[ \t\r\n]+"),
    ("IMPLIES", r":-"),
    ("COMPARE", r"<=|>=|!=|==|<|>|="),
    ("NUMBER", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("STRING", r"'(?:\\.|[^'\\])*'|\"(?:\\.|[^\"\\])*\""),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("PERIOD", r"\."),
    ("QMARK", r"\?"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

#: How a missing token kind reads in an error message.
_TOKEN_NAMES = {
    "IMPLIES": "':-'",
    "COMPARE": "a comparison operator",
    "NUMBER": "a number",
    "IDENT": "an identifier",
    "STRING": "a string",
    "LPAREN": "'('",
    "RPAREN": "')'",
    "COMMA": "','",
    "PERIOD": "'.'",
    "QMARK": "'?'",
}


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int = 1

    @property
    def span(self) -> Span:
        """The source region this token covers (handles embedded newlines)."""
        newlines = self.text.count("\n")
        if newlines:
            tail = len(self.text) - self.text.rfind("\n")
            return Span(self.line, self.column, self.line + newlines, tail)
        return Span(self.line, self.column, self.line, self.column + len(self.text))

    @property
    def end(self) -> Tuple[int, int]:
        """``(line, column)`` one past the token's last character."""
        span = self.span
        return span.end_line, span.end_column


def tokenize(text: str) -> List[Token]:
    """Split program text into tokens, dropping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    column = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DatalogSyntaxError(
                f"unexpected character {text[pos]!r}", line=line, column=column
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, value, line, column))
        newlines = value.count("\n")
        if newlines:
            line += newlines
            column = len(value) - value.rfind("\n")
        else:
            column += len(value)
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: Sequence[Token]):
        self.tokens = list(tokens)
        self.index = 0
        # Per-clause counter for anonymous variables: every `_` becomes a
        # fresh variable (never unified with another `_`), numbered in
        # occurrence order so a printed clause reparses to equal structure.
        self._anonymous = 0
        self._pending_atom: Optional[Literal] = None

    def _fresh_anonymous(self) -> Variable:
        variable = Variable(f"{ANONYMOUS_PREFIX}{self._anonymous}")
        self._anonymous += 1
        return variable

    # -- token stream helpers ------------------------------------------------

    def _end_position(self) -> Tuple[int, int]:
        """One past the last token -- where "end of input" is."""
        if self.tokens:
            return self.tokens[-1].end
        return 1, 1

    def _end_of_input(self, expected: str) -> DatalogSyntaxError:
        line, column = self._end_position()
        return DatalogSyntaxError(
            f"{expected}, found end of input", line=line, column=column
        )

    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise self._end_of_input("expected more input")
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        expected = _TOKEN_NAMES.get(kind, kind)
        if token is None:
            raise self._end_of_input(f"expected {expected}")
        if token.kind != kind:
            raise DatalogSyntaxError(
                f"expected {expected}, found {token.text!r}", span=token.span
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar ----------------------------------------------------------------

    def parse_program(self) -> List[Rule]:
        rules: List[Rule] = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self) -> Rule:
        self._anonymous = 0  # wildcard numbering restarts per clause
        head = self.parse_literal()
        if head.is_builtin:
            raise DatalogSyntaxError(
                f"built-in predicate {head.predicate!r} cannot be a rule head",
                span=head.span,
            )
        token = self.peek()
        body: List[Literal] = []
        if token is not None and token.kind == "IMPLIES":
            self.advance()
            body.append(self.parse_literal())
            while self.peek() is not None and self.peek().kind == "COMMA":  # type: ignore[union-attr]
                self.advance()
                body.append(self.parse_literal())
        period = self.expect("PERIOD")
        rule = Rule(head, body)
        rule.span = merge_spans(head.span, period.span)
        return rule

    def parse_literal(self) -> Literal:
        token = self.peek()
        if token is None:
            raise self._end_of_input("expected a literal")
        if token.kind == "IDENT" and token.text == "not":
            self.advance()
            inner = self.parse_literal()  # the patched entry point handles atoms
            if inner.is_builtin:
                raise DatalogSyntaxError(
                    f"built-in comparison {inner} cannot be negated; "
                    "use the complementary operator",
                    span=token.span,
                )
            if inner.negated:
                raise DatalogSyntaxError(
                    "double negation is not part of the language", span=token.span
                )
            negated = Literal(inner.predicate, inner.args, negated=True)
            negated.span = token.span.merge(inner.span)
            return negated
        # Either `ident(args)` or an infix comparison `term OP term`.
        first_term, was_plain_atom = self.parse_term_or_atom()
        nxt = self.peek()
        if nxt is not None and nxt.kind == "COMPARE":
            op = self.advance().text
            right, _ = self.parse_term_or_atom()
            if op not in BUILTIN_PREDICATES:
                raise DatalogSyntaxError(
                    f"unknown comparison operator {op!r}", span=nxt.span
                )
            comparison = Literal(op, [first_term, right])
            comparison.span = merge_spans(first_term.span, nxt.span, right.span)
            return comparison
        if was_plain_atom and isinstance(first_term, Constant):
            # A zero-argument predicate like `halt.` -- represent as arity 0.
            atom = Literal(str(first_term.value), [])
            atom.span = first_term.span
            return atom
        raise DatalogSyntaxError(
            f"expected a literal near {token.text!r}", span=token.span
        )

    def parse_term_or_atom(self) -> Tuple[Term, bool]:
        """Parse either a term, or an atom ``p(t, ...)`` (returned via exception path).

        Returns ``(term, True)`` when the construct was a bare identifier or
        literal value.  When an identifier is immediately followed by ``(`` we
        instead parse the full atom and *raise through* by storing it --
        handled by :meth:`parse_literal` through `_pending_atom`.
        """
        token = self.advance()
        if token.kind == "IDENT":
            nxt = self.peek()
            if nxt is not None and nxt.kind == "LPAREN":
                # It is an atom: p(arg, ..., arg)
                self.advance()
                args: List[Term] = []
                if self.peek() is not None and self.peek().kind != "RPAREN":  # type: ignore[union-attr]
                    args.append(self.parse_term())
                    while self.peek() is not None and self.peek().kind == "COMMA":  # type: ignore[union-attr]
                        self.advance()
                        args.append(self.parse_term())
                rparen = self.expect("RPAREN")
                atom = Literal(token.text, args)
                atom.span = token.span.merge(rparen.span)
                self._pending_atom = atom
                raise _AtomParsed(atom)
            return self._name_term(token), True
        if token.kind == "NUMBER":
            return self._spanned(Constant(int(token.text)), token), True
        if token.kind == "STRING":
            return (
                self._spanned(Constant(_unquote_string(token.text, token.span)), token),
                True,
            )
        raise DatalogSyntaxError(f"unexpected token {token.text!r}", span=token.span)

    def _spanned(self, term: Term, token: Token) -> Term:
        term.span = token.span
        return term

    def _name_term(self, token: Token) -> Term:
        """The term a bare identifier token denotes (variable or constant)."""
        if token.text == "_":
            return self._spanned(self._fresh_anonymous(), token)
        if token.text[0].isupper() or token.text[0] == "_":
            return self._spanned(Variable(token.text), token)
        return self._spanned(Constant(token.text), token)

    def parse_term(self) -> Term:
        token = self.advance()
        if token.kind == "IDENT":
            nxt = self.peek()
            if nxt is not None and nxt.kind == "LPAREN":
                if token.text in AGGREGATE_FUNCTIONS:
                    return self._parse_aggregate(token)
                if token.text == "t":
                    return self._parse_tuple_constant(token)
                raise DatalogSyntaxError(
                    f"nested atom {token.text!r}(...) is not a term "
                    "(only t(...) tuples and aggregate terms may nest)",
                    span=token.span,
                )
            return self._name_term(token)
        if token.kind == "NUMBER":
            return self._spanned(Constant(int(token.text)), token)
        if token.kind == "STRING":
            return self._spanned(Constant(_unquote_string(token.text, token.span)), token)
        raise DatalogSyntaxError(
            f"expected a term, found {token.text!r}", span=token.span
        )

    def _parse_aggregate(self, token: Token) -> AggregateTerm:
        """``min(C)`` / ``max(C)`` / ``sum(C)`` / ``count(C)`` in argument position."""
        self.expect("LPAREN")
        inner = self.parse_term()
        if not isinstance(inner, Variable):
            raise DatalogSyntaxError(
                f"aggregate {token.text}(...) takes a single variable",
                span=token.span,
            )
        rparen = self.expect("RPAREN")
        aggregate = AggregateTerm(token.text, inner)
        aggregate.span = token.span.merge(rparen.span)
        return aggregate

    def _parse_tuple_constant(self, token: Token) -> Constant:
        """``t(v1, ..., vn)`` in argument position: a tuple-payload constant."""
        self.expect("LPAREN")
        values: List[object] = []
        if self.peek() is not None and self.peek().kind != "RPAREN":  # type: ignore[union-attr]
            values.append(self._tuple_component(token))
            while self.peek() is not None and self.peek().kind == "COMMA":  # type: ignore[union-attr]
                self.advance()
                values.append(self._tuple_component(token))
        rparen = self.expect("RPAREN")
        constant = Constant(tuple(values))
        constant.span = token.span.merge(rparen.span)
        return constant

    def _tuple_component(self, token: Token) -> object:
        component = self.parse_term()
        if not isinstance(component, Constant):
            raise DatalogSyntaxError(
                f"tuple constant t(...) may only contain constants, got {component}",
                span=component.span or token.span,
            )
        return component.value


class _AtomParsed(Exception):
    """Internal control-flow signal: a full atom was parsed where a term could be."""

    def __init__(self, atom: Literal):
        super().__init__(str(atom))
        self.atom = atom


def _parse_literal_with_atoms(parser: _Parser) -> Literal:
    try:
        return parser.parse_literal()
    except _AtomParsed as signal:
        return signal.atom


# Patch the grammar entry points to route the atom signal.  Using the
# exception keeps parse_term_or_atom simple while letting `p(X) < q(Y)` be
# rejected naturally (comparisons only accept plain terms).
_original_parse_literal = _Parser.parse_literal


def _parse_literal(self: _Parser) -> Literal:  # type: ignore[override]
    try:
        return _original_parse_literal(self)
    except _AtomParsed as signal:
        return signal.atom


_Parser.parse_literal = _parse_literal  # type: ignore[method-assign]


def parse_program(text: str, validate: bool = True) -> Program:
    """Parse a full program (rules and facts) from text."""
    parser = _Parser(tokenize(text))
    rules = parser.parse_program()
    return Program(rules, validate=validate)


def parse_rules(text: str) -> List[Rule]:
    """Parse text into a list of rules without building a validated Program."""
    parser = _Parser(tokenize(text))
    return parser.parse_program()


def parse_literal(text: str) -> Literal:
    """Parse a single literal, e.g. a query such as ``sg(john, Y)``.

    A trailing period or question mark is accepted and ignored.
    """
    tokens = [t for t in tokenize(text) if t.kind not in ("PERIOD", "QMARK")]
    parser = _Parser(tokens)
    literal = parser.parse_literal()
    if not parser.at_end():
        extra = parser.peek()
        assert extra is not None
        raise DatalogSyntaxError(
            f"unexpected trailing input {extra.text!r}", span=extra.span
        )
    return literal


def parse_query(text: str) -> Literal:
    """Alias of :func:`parse_literal`, reads better at call sites."""
    return parse_literal(text)
