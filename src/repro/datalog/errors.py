"""Exception hierarchy for the Datalog substrate.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so a caller
can catch the whole family with a single ``except`` clause.  The more specific
classes distinguish problems with the *text* of a program (parsing), with its
*structure* (validation, safety), and with the *applicability* of an
evaluation strategy to a given program/query pair.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class DatalogSyntaxError(ReproError):
    """Raised by the parser when the program text is malformed.

    Attributes
    ----------
    line:
        One-based line number at which the problem was detected, when known.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class ProgramValidationError(ReproError):
    """Raised when a structurally invalid program is constructed.

    Examples: a base predicate used in the head of a rule with a non-empty
    body, a predicate used with two different arities, or an unsafe rule
    (a head variable that does not occur in any positive body literal).
    """


class UnsafeRuleError(ProgramValidationError):
    """Raised for rules whose head variables are not bound by the body."""


class StratificationError(ProgramValidationError):
    """Raised when a program has no stratification.

    Stratified evaluation requires every negated or aggregated dependency to
    point strictly *downward*: a predicate may not depend on a member of its
    own recursive component through negation or through an aggregate head
    (the classic counterexample is ``win(X) :- move(X, Y), not win(Y).``).
    The message names the offending rule and the recursive component.
    """


class NotApplicableError(ReproError):
    """Raised when an evaluation strategy does not apply to the given input.

    The paper's method only covers certain program classes (binary-chain,
    linear, chain programs after adornment); asking the corresponding
    evaluator to run outside its class raises this error rather than silently
    producing wrong answers.
    """


class NonTerminationError(ReproError):
    """Raised when an iterative evaluator exceeds its iteration budget.

    The basic graph-traversal algorithm of the paper may not terminate on
    cyclic data (Section 3, Figure 8).  Evaluators accept an explicit
    ``max_iterations`` bound and raise this error when the bound is hit
    without the termination condition being reached.
    """

    def __init__(self, message: str, partial_answer=None, iterations: int | None = None):
        super().__init__(message)
        self.partial_answer = partial_answer
        self.iterations = iterations


class EvaluationError(ReproError):
    """Raised for internal inconsistencies detected during evaluation."""
