"""Exception hierarchy for the Datalog substrate.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so a caller
can catch the whole family with a single ``except`` clause.  The more specific
classes distinguish problems with the *text* of a program (parsing), with its
*structure* (validation, safety), and with the *applicability* of an
evaluation strategy to a given program/query pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .diagnostics import Diagnostic
    from .spans import Span


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class DatalogSyntaxError(ReproError):
    """Raised by the parser when the program text is malformed.

    Attributes
    ----------
    line / column:
        One-based position at which the problem was detected.  At end of
        input the position is one past the last token (never ``None`` for a
        non-empty input), so ``expected '.', found end of input at 3:14``
        names a real place to look.
    span:
        The full :class:`~repro.datalog.spans.Span` of the offending token,
        when one exists.
    """

    code = "DL101"

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
        span: "Span | None" = None,
    ):
        if span is not None and line is None:
            line, column = span.line, span.column
        self.bare_message = message
        if line is not None and column is not None:
            message = f"{message} at {line}:{column}"
        elif line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column
        self.span = span

    @property
    def diagnostic(self) -> "Diagnostic":
        """The structured :class:`~repro.datalog.diagnostics.Diagnostic`."""
        from .diagnostics import Diagnostic, Severity
        from .spans import Span

        span = self.span
        if span is None and self.line is not None:
            span = Span.point(self.line, self.column if self.column else 1)
        return Diagnostic(
            code=self.code,
            severity=Severity.ERROR,
            message=self.bare_message,
            span=span,
        )


class ProgramValidationError(ReproError):
    """Raised when a structurally invalid program is constructed.

    Examples: a base predicate used in the head of a rule with a non-empty
    body, a predicate used with two different arities, or an unsafe rule
    (a head variable that does not occur in any positive body literal).

    Subclasses raised by program analysis additionally carry a structured
    :attr:`diagnostic` (stable code, severity, source span, fix hint) while
    ``str(exc)`` keeps the plain human-readable message.
    """

    def __init__(self, message: str, diagnostic: "Optional[Diagnostic]" = None):
        super().__init__(message)
        self._diagnostic = diagnostic

    @property
    def diagnostic(self) -> "Diagnostic":
        """The structured diagnostic; synthesized when none was attached."""
        if self._diagnostic is not None:
            return self._diagnostic
        from .diagnostics import Diagnostic, Severity

        return Diagnostic(
            code=getattr(type(self), "code", "DL200"),
            severity=Severity.ERROR,
            message=str(self),
        )


class UnsafeRuleError(ProgramValidationError):
    """Raised for rules whose head variables are not bound by the body.

    The :attr:`~ProgramValidationError.diagnostic` names the exact unbound
    variable and points at its source span when the rule was parsed from
    text.
    """

    code = "DL201"


class StratificationError(ProgramValidationError):
    """Raised when a program has no stratification.

    Stratified evaluation requires every negated or aggregated dependency to
    point strictly *downward*: a predicate may not depend on a member of its
    own recursive component through negation or through an aggregate head
    (the classic counterexample is ``win(X) :- move(X, Y), not win(Y).``).
    The message names the offending rule and the recursive component; the
    :attr:`~ProgramValidationError.diagnostic` carries the dependency cycle
    as a chain of related source spans.
    """

    code = "DL301"


class NotApplicableError(ReproError):
    """Raised when an evaluation strategy does not apply to the given input.

    The paper's method only covers certain program classes (binary-chain,
    linear, chain programs after adornment); asking the corresponding
    evaluator to run outside its class raises this error rather than silently
    producing wrong answers.
    """


class NonTerminationError(ReproError):
    """Raised when an iterative evaluator exceeds its iteration budget.

    The basic graph-traversal algorithm of the paper may not terminate on
    cyclic data (Section 3, Figure 8).  Evaluators accept an explicit
    ``max_iterations`` bound and raise this error when the bound is hit
    without the termination condition being reached.
    """

    def __init__(self, message: str, partial_answer=None, iterations: int | None = None):
        super().__init__(message)
        self.partial_answer = partial_answer
        self.iterations = iterations


class EvaluationError(ReproError):
    """Raised for internal inconsistencies detected during evaluation."""
