"""Program-level static analysis: structured diagnostics over whole programs.

Every evaluation strategy of the paper imposes structural preconditions --
safety, stratifiability, binding/adornment feasibility, regularity -- that
the engines historically discovered piecemeal and late (an unsafe rule at
``Program`` construction with no variable named, a never-ground builtin at
plan-compile time deep inside a fixpoint, a stratification cycle at
materialize time).  This module runs all of those checks *statically*, over
a whole program at once, and reports each finding as a :class:`Diagnostic`:
a stable error code (``DL201``), a severity, a source span (threaded from
the lexer through every parsed term, literal and rule), a human message and
an optional fix hint.

Severities
----------
* **error** -- the program cannot evaluate (unsafe rule, arity clash,
  unstratifiable negation).  The matching exceptions
  (:class:`~repro.datalog.errors.UnsafeRuleError`,
  :class:`~repro.datalog.errors.StratificationError`, ...) carry the same
  diagnostic on their ``.diagnostic`` attribute.
* **warning** -- the program evaluates but almost certainly not as intended
  (undefined predicate, singleton named variable -- the PR-5 wildcard
  aliasing bug class, duplicate/subsumed rules, a provably empty body).
* **hint** -- advisory (a query the constant-driven strategies cannot
  serve; unreachable rules).

Error codes
-----------
==========  ========  =====================================================
code        severity  meaning
==========  ========  =====================================================
``DL101``   error     syntax error (lexer/parser)
``DL201``   error     unsafe rule: head variable never positively bound
``DL202``   error     built-in comparison can never become ground
``DL203``   error     unsafe variable under negation or aggregation
``DL204``   error     predicate used with inconsistent arities
``DL205``   error     predicate is both base (facts) and derived (rules)
``DL206``   error     fact with a non-ground head
``DL301``   error     no stratification (negation/aggregation in recursion)
``DL401``   warning   predicate used in a body but never defined
``DL402``   hint      rule/predicate unreachable from any queried head
``DL403``   warning   singleton named variable (did you mean ``_``?)
``DL404``   warning   exact duplicate rule
``DL405``   warning   rule subsumed by a more general rule
``DL406``   warning   contradictory builtins: body is provably empty
``DL501``   hint      binding modes rule out the demand strategies
``DL701``   warning   join is provably empty (disjoint inferred domains)
``DL702``   warning   sort-mismatched recursion (recursive case vs base case)
``DL703``   warning   built-in comparison over incompatible sorts
``DL704``   hint      rule can never fire under the current EDB
==========  ========  =====================================================

The DL7xx family is produced by the abstract-interpretation layer
(:mod:`repro.datalog.abstract`): a dataflow fixpoint inferring per-column
sorts, constant sets, integer intervals and emptiness for every predicate.
It runs in :func:`check_program` (so ``session.diagnostics`` carries the
findings), in :func:`ensure_valid` (surfaced through the planner event ring
``explain()`` drains) and in the lint CLI behind ``--analyze``.

Entry points
------------
:func:`lint_source` (text), :func:`lint_rules` (possibly-invalid rule
lists), :func:`lint_program` (validated programs) and :func:`check_program`
(the eager prepare-time driver: errors raise, warnings are returned).  The
binding-mode analysis (:func:`chain_feasibility`,
:func:`query_strategy_report`) reuses :mod:`repro.core.adornment` and backs
the applicability pre-filter in :func:`repro.core.planner.classify_query`.
All checks reuse the memoized :class:`~repro.datalog.analysis
.ProgramAnalysis` / :class:`~repro.datalog.analysis.Stratification`
machinery rather than re-deriving dependency graphs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .errors import DatalogSyntaxError, StratificationError
from .literals import Literal
from .rules import Program, Rule
from .spans import Span, merge_spans
from .terms import AggregateTerm, Constant, Term, Variable

__all__ = [
    "Severity",
    "Diagnostic",
    "Related",
    "CODES",
    "lint_source",
    "lint_rules",
    "lint_program",
    "check_program",
    "chain_feasibility",
    "query_strategy_report",
    "rule_safety_diagnostics",
    "stratification_cycle_diagnostic",
    "set_eager_validation",
    "eager_validation_enabled",
    "ensure_valid",
    "abstract_diagnostics",
]


class Severity(enum.Enum):
    """How bad a diagnostic is; :attr:`rank` orders errors first."""

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.HINT: 2}

#: Stable code -> (severity, one-line summary).  The lint CLI prints this
#: table with ``--codes``; the README error-code table mirrors it.
CODES: Dict[str, Tuple[Severity, str]] = {
    "DL101": (Severity.ERROR, "syntax error"),
    "DL201": (Severity.ERROR, "unsafe rule: head variable never positively bound"),
    "DL202": (Severity.ERROR, "built-in comparison can never become ground"),
    "DL203": (Severity.ERROR, "unsafe variable under negation or aggregation"),
    "DL204": (Severity.ERROR, "predicate used with inconsistent arities"),
    "DL205": (Severity.ERROR, "predicate is both base (facts) and derived (rules)"),
    "DL206": (Severity.ERROR, "fact with a non-ground head"),
    "DL301": (Severity.ERROR, "no stratification: negation/aggregation through recursion"),
    "DL401": (Severity.WARNING, "predicate used in a body but never defined"),
    "DL402": (Severity.HINT, "rule/predicate unreachable from any queried head"),
    "DL403": (Severity.WARNING, "singleton named variable (did you mean '_'?)"),
    "DL404": (Severity.WARNING, "exact duplicate rule"),
    "DL405": (Severity.WARNING, "rule subsumed by a more general rule"),
    "DL406": (Severity.WARNING, "contradictory builtins: rule body is provably empty"),
    "DL501": (Severity.HINT, "binding modes rule out the demand strategies"),
    "DL601": (Severity.HINT, "cardinality estimate wildly off; plan re-costed at runtime"),
    "DL701": (Severity.WARNING, "join is provably empty: the variable's positive occurrences admit disjoint domains"),
    "DL702": (Severity.WARNING, "sort-mismatched recursion: the recursive case produces sorts no base case produces"),
    "DL703": (Severity.WARNING, "built-in comparison over incompatible sorts can never succeed"),
    "DL704": (Severity.HINT, "rule can never fire under the current extensional database"),
}


@dataclass(frozen=True)
class Related:
    """A secondary source location attached to a diagnostic (cycle steps)."""

    message: str
    span: Optional[Span] = None

    def to_dict(self) -> Dict[str, object]:
        return {"message": self.message, **_span_dict(self.span)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analysis.

    Attributes
    ----------
    code:
        Stable identifier from :data:`CODES` (``DL201``, ...).
    severity:
        :class:`Severity` -- error, warning or hint.
    message:
        Human-readable description naming the offending variable, predicate
        or rule.
    span:
        Source region of the offending token(s); ``None`` for
        programmatically built programs.
    hint:
        Optional fix suggestion.
    rule:
        Printed form of the rule the diagnostic is about, when applicable.
    related:
        Secondary spans, e.g. the witness chain of a stratification cycle
        or the first occurrence shadowed by a duplicate.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None
    rule: Optional[str] = None
    related: Tuple[Related, ...] = ()

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (the lint CLI's ``--format json`` rows)."""
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            **_span_dict(self.span),
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.rule is not None:
            payload["rule"] = self.rule
        if self.related:
            payload["related"] = [entry.to_dict() for entry in self.related]
        return payload

    def format(self, path: Optional[str] = None) -> str:
        """The compiler-style one-liner: ``path:3:14: error[DL201]: ...``."""
        location = ""
        if self.span is not None:
            location = f"{self.span.start}: "
        prefix = f"{path}:" if path else ""
        text = f"{prefix}{location}{self.severity.value}[{self.code}]: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        for entry in self.related:
            where = f" at {entry.span.start}" if entry.span is not None else ""
            text += f"\n    note: {entry.message}{where}"
        return text

    def sort_key(self) -> Tuple[int, int, int, str]:
        line = self.span.line if self.span is not None else 1 << 30
        column = self.span.column if self.span is not None else 0
        return (line, column, self.severity.rank, self.code)


def _span_dict(span: Optional[Span]) -> Dict[str, object]:
    if span is None:
        return {"line": None, "column": None, "end_line": None, "end_column": None}
    return {
        "line": span.line,
        "column": span.column,
        "end_line": span.end_line,
        "end_column": span.end_column,
    }


# ---------------------------------------------------------------------------
# Eager-validation switch (Engine.answer / QuerySession drivers)
# ---------------------------------------------------------------------------

_EAGER_VALIDATION = True


def set_eager_validation(enabled: bool) -> bool:
    """Toggle prepare-time validation globally; returns the previous value.

    With eager validation on (the default), :meth:`repro.engines.base.Engine
    .answer` and :class:`repro.session.QuerySession` validate the program
    *before* any evaluation starts, so a stratification cycle raises at
    prepare time instead of mid-fixpoint.  Turning it off restores the
    historical lazy behaviour (the same exceptions surface later, from
    inside the runtime).  Evaluation results are identical either way.
    """
    global _EAGER_VALIDATION
    previous = _EAGER_VALIDATION
    _EAGER_VALIDATION = bool(enabled)
    return previous


def eager_validation_enabled() -> bool:
    """Whether prepare-time validation is currently on."""
    return _EAGER_VALIDATION


def ensure_valid(program: Program, database: Optional[object] = None) -> None:
    """Raise eagerly when ``program`` cannot evaluate; cheap when it can.

    Positive programs were fully validated at construction; the one check
    that historically fired mid-evaluation is stratifiability, so that is
    what runs here (memoized per program -- repeated calls are O(1)).
    Honors :func:`set_eager_validation`.

    When ``database`` is supplied the abstract-interpretation layer also
    runs (memoized per program instance and database version) and records
    its DL7xx findings on the planner event ring, where ``explain()``
    surfaces them.  The analysis never charges a work counter and never
    raises: its findings are warnings and hints, not errors.
    """
    if not _EAGER_VALIDATION:
        return
    if not program.is_positive:
        from .analysis import Stratification

        Stratification.of(program)
    if database is not None:
        _record_abstract_events(program, database)


def _record_abstract_events(program: Program, database: object) -> None:
    """Record the DL7xx findings as planner events, once per analysis."""
    from .abstract import AbstractAnalysis

    analysis = AbstractAnalysis.of(program, database)
    if getattr(analysis, "_events_recorded", False):
        return
    analysis._events_recorded = True
    findings = _abstract_findings(analysis)
    if not findings:
        return
    from .plans import record_planner_event

    for finding in findings:
        record_planner_event(finding)


def abstract_diagnostics(
    program: Program,
    database: Optional[object] = None,
    known: Iterable[str] = (),
) -> List[Diagnostic]:
    """The DL7xx findings of the abstract interpretation, sorted by span.

    ``database`` supplies the extensional facts (closed world: a base
    predicate it does not store is *known* empty); without one the analysis
    is open-world and only program-text facts seed the domains.  ``known``
    names base predicates whose facts live elsewhere (the lint corpus'
    ``% lint: known`` directive).
    """
    from .abstract import AbstractAnalysis

    analysis = AbstractAnalysis.of(program, database, known=known)
    return _abstract_findings(analysis)


def _abstract_findings(analysis) -> List[Diagnostic]:
    """Convert converged rule insights into DL7xx diagnostics."""
    findings: List[Diagnostic] = []
    for insight in analysis.insights:
        rule = insight.rule
        span = None
        if insight.literal is not None:
            span = insight.literal.span
        if span is None:
            span = rule.span
        if insight.kind == "empty-join":
            findings.append(
                Diagnostic(
                    code="DL701",
                    severity=Severity.WARNING,
                    message=f"join is provably empty: {insight.detail}",
                    span=span,
                    rule=str(rule),
                    hint=(
                        "the rule can never derive a fact; check the "
                        "joined predicates' argument sorts and constants"
                    ),
                )
            )
        elif insight.kind == "builtin-sorts":
            findings.append(
                Diagnostic(
                    code="DL703",
                    severity=Severity.WARNING,
                    message=insight.detail,
                    span=span,
                    rule=str(rule),
                    hint=(
                        "an ordered comparison of incompatible sorts raises "
                        "TypeError at evaluation time"
                    ),
                )
            )
        elif insight.kind == "never-fires" and analysis.seed_facts > 0:
            findings.append(
                Diagnostic(
                    code="DL704",
                    severity=Severity.HINT,
                    message=(
                        "rule can never fire under the current extensional "
                        f"database: {insight.detail}"
                    ),
                    span=span,
                    rule=str(rule),
                )
            )
    for rule, position in analysis.recursion_mismatches:
        head_span = rule.head.span if rule.head.span is not None else rule.span
        findings.append(
            Diagnostic(
                code="DL702",
                severity=Severity.WARNING,
                message=(
                    f"sort-mismatched recursion: column {position} of "
                    f"{rule.head.predicate!r} receives sorts from this "
                    "recursive rule that no base case of the predicate "
                    "produces"
                ),
                span=head_span,
                rule=str(rule),
                hint=(
                    "the recursion can only recirculate values its base "
                    "cases never supply; check the column's sorts"
                ),
            )
        )
    return sorted(findings, key=Diagnostic.sort_key)


# ---------------------------------------------------------------------------
# Per-rule safety (exact variable + position) -- shared with UnsafeRuleError
# ---------------------------------------------------------------------------

def rule_safety_diagnostics(rule: Rule) -> List[Diagnostic]:
    """Every safety violation of ``rule``, naming the exact unbound variable.

    Mirrors :meth:`repro.datalog.rules.Rule.is_safe` check for check, but
    instead of a boolean produces one :class:`Diagnostic` per unbound
    variable with its source span and head/literal position --
    ``UnsafeRuleError`` carries the first of these.
    """
    diagnostics: List[Diagnostic] = []
    rendered = str(rule)
    if not rule.body:
        if not rule.head.is_ground:
            offenders = sorted({v.name for v in rule.head.variables()})
            first = next(iter(rule.head.variables()), None)
            diagnostics.append(
                Diagnostic(
                    code="DL206",
                    severity=Severity.ERROR,
                    message=(
                        f"fact {rule} has a non-ground head: "
                        f"variable(s) {', '.join(offenders)} have no value"
                    ),
                    span=(first.span if first is not None else None) or rule.span,
                    rule=rendered,
                    hint="facts must list constants only; did you mean to add a body?",
                )
            )
        return diagnostics

    bound: Set[Variable] = set()
    for lit in rule.positive_body():
        bound.update(lit.variables())

    for position, term in enumerate(rule.head.args):
        if isinstance(term, Variable) and term not in bound:
            diagnostics.append(
                Diagnostic(
                    code="DL201",
                    severity=Severity.ERROR,
                    message=(
                        f"unsafe rule: head variable {term.name!r} (position "
                        f"{position + 1} of {rule.head.predicate!r}) is not bound "
                        "by any positive body literal"
                    ),
                    span=term.span or rule.span,
                    rule=rendered,
                    hint=(
                        f"add a positive body literal mentioning {term.name} "
                        "or replace it with a constant"
                    ),
                )
            )
        elif isinstance(term, AggregateTerm) and term.var not in bound:
            diagnostics.append(
                Diagnostic(
                    code="DL203",
                    severity=Severity.ERROR,
                    message=(
                        f"unsafe aggregate: variable {term.var.name!r} of "
                        f"{term.func}({term.var.name}) is not bound by any "
                        "positive body literal"
                    ),
                    span=term.span or rule.span,
                    rule=rendered,
                )
            )

    for lit in rule.builtin_body():
        for term in lit.args:
            if isinstance(term, Variable) and term not in bound:
                diagnostics.append(
                    Diagnostic(
                        code="DL202",
                        severity=Severity.ERROR,
                        message=(
                            f"built-in comparison {lit} can never become ground: "
                            f"variable {term.name!r} is not bound by any positive "
                            "body literal"
                        ),
                        span=term.span or lit.span or rule.span,
                        rule=rendered,
                        hint=(
                            "built-ins only filter; bind the variable with a "
                            "positive literal first"
                        ),
                    )
                )

    for lit in rule.negated_body():
        for term in lit.args:
            if (
                isinstance(term, Variable)
                and not term.is_anonymous
                and term not in bound
            ):
                diagnostics.append(
                    Diagnostic(
                        code="DL203",
                        severity=Severity.ERROR,
                        message=(
                            f"unsafe negation: variable {term.name!r} of {lit} is "
                            "not bound by any positive body literal"
                        ),
                        span=term.span or lit.span or rule.span,
                        rule=rendered,
                        hint=(
                            "bind it positively, or use '_' if the position is "
                            "existential within the anti-join"
                        ),
                    )
                )
    return diagnostics


# ---------------------------------------------------------------------------
# Stratification cycle witness (shared with StratificationError)
# ---------------------------------------------------------------------------

def stratification_cycle_diagnostic(
    program: Program,
    dependency_graph: Dict[str, Set[str]],
    component: FrozenSet[str],
    head: str,
    dependency: str,
    message: str,
) -> Diagnostic:
    """The ``DL301`` diagnostic for a negative arc inside ``component``.

    The witness is the full dependency cycle ``head -> dependency -> ... ->
    head`` rendered as a chain of related source spans, one per arc, each
    pointing at the body literal that creates the dependency.
    """
    cycle = _cycle_through(dependency_graph, component, head, dependency)
    related: List[Related] = []
    primary_span: Optional[Span] = None
    for position in range(len(cycle) - 1):
        source, target = cycle[position], cycle[position + 1]
        witness_rule, witness_span, negative = _dependency_witness(
            program, source, target
        )
        if position == 0 and witness_span is not None:
            primary_span = witness_span
        step = f"{source!r} depends {'negatively ' if negative else ''}on {target!r}"
        if witness_rule is not None:
            step += f" in rule {witness_rule}"
        related.append(Related(message=step, span=witness_span))
    return Diagnostic(
        code="DL301",
        severity=Severity.ERROR,
        message=message,
        span=primary_span,
        related=tuple(related),
        hint=(
            "break the cycle: negation and aggregation must only read strata "
            "that are already complete"
        ),
    )


def _cycle_through(
    graph: Dict[str, Set[str]],
    component: FrozenSet[str],
    head: str,
    dependency: str,
) -> List[str]:
    """A shortest ``head -> dependency -> ... -> head`` path in ``component``."""
    if dependency == head:
        return [head, head]
    # BFS from `dependency` back to `head`, staying inside the component.
    parents: Dict[str, str] = {}
    frontier = [dependency]
    seen = {dependency}
    while frontier and head not in parents:
        next_frontier: List[str] = []
        for node in frontier:
            for successor in sorted(graph.get(node, ())):
                if successor not in component or successor in seen:
                    continue
                parents[successor] = node
                seen.add(successor)
                next_frontier.append(successor)
                if successor == head:
                    break
        frontier = next_frontier
    path = [head]
    node = head
    while node != dependency:
        node = parents.get(node, dependency)
        path.append(node)
    path.reverse()  # dependency ... head
    return [head] + path


def _dependency_witness(
    program: Program, source: str, target: str
) -> Tuple[Optional[Rule], Optional[Span], bool]:
    """A rule (and literal span) showing that ``source`` reads ``target``."""
    fallback: Tuple[Optional[Rule], Optional[Span], bool] = (None, None, False)
    for rule in program.rules_for(source):
        for lit in rule.body:
            if lit.is_builtin or lit.predicate != target:
                continue
            negative = lit.negated or rule.is_aggregate
            if negative:
                return rule, lit.span or rule.span, True
            if fallback[0] is None:
                fallback = (rule, lit.span or rule.span, False)
    return fallback


# ---------------------------------------------------------------------------
# Binding-mode analysis (reuses core.adornment)
# ---------------------------------------------------------------------------

def _binding_pattern(query: Literal) -> str:
    return "".join(
        "b" if isinstance(term, Constant) else "f" for term in query.args
    )


def chain_feasibility(
    program: Program,
    query: Literal,
    analysis: Optional[object] = None,
) -> Tuple[bool, str]:
    """Can the Section 4 chain transformation execute ``query``?

    Adorns the program for the query's binding pattern (constants are bound)
    and checks the chain-program condition -- the exact preconditions under
    which the top-down/magic-style demand strategies are equivalence
    preserving.  Returns ``(feasible, reason)``; the reason names the
    violating adorned rule when infeasible.  Memoized per program analysis
    and ``(predicate, binding pattern)``, so the planner can consult it on
    hot per-query paths.
    """
    from ..core.adornment import adorn
    from .analysis import ProgramAnalysis
    from .errors import NotApplicableError

    resolved = analysis if analysis is not None else ProgramAnalysis.of(program)
    memo: Dict[Tuple[str, str], Tuple[bool, str]] = resolved.__dict__.setdefault(
        "_binding_mode_memo", {}
    )
    key = (query.predicate, _binding_pattern(query))
    cached = memo.get(key)
    if cached is not None:
        return cached
    try:
        adorned = adorn(program, query, resolved)  # type: ignore[arg-type]
    except NotApplicableError as exc:
        result = (False, str(exc))
        memo[key] = result
        return result
    violations = adorned.violations()
    if violations:
        result = (
            False,
            f"adorned rule `{violations[0]}` violates the chain condition "
            "(a prefix variable is also a free head variable)",
        )
    else:
        result = (True, "")
    memo[key] = result
    return result


def query_strategy_report(
    program: Program,
    query: Literal,
    analysis: Optional[object] = None,
) -> Dict[str, Tuple[bool, str]]:
    """Per-strategy executability prediction for ``query``.

    Keys are ``"graph"``, ``"chain"`` and ``"magic"``; values are
    ``(feasible, reason)``.  The graph entry mirrors the planner's
    structural test, the chain entry is the adornment-based
    :func:`chain_feasibility`, and the magic entry consults the magic
    engine's own ``applicable`` check.
    """
    from .analysis import ProgramAnalysis

    resolved = analysis if analysis is not None else ProgramAnalysis.of(program)
    report: Dict[str, Tuple[bool, str]] = {}
    if not program.is_positive:
        reason = "stratified programs evaluate bottom-up only"
        return {"graph": (False, reason), "chain": (False, reason), "magic": (False, reason)}
    if (
        query.arity == 2
        and resolved.is_binary_chain_program()  # type: ignore[attr-defined]
        and resolved.is_linear_program()  # type: ignore[attr-defined]
    ):
        report["graph"] = (True, "")
    else:
        report["graph"] = (
            False,
            "graph traversal needs a linear binary-chain program and a binary query",
        )
    if resolved.is_linear_program():  # type: ignore[attr-defined]
        report["chain"] = chain_feasibility(program, query, resolved)
    else:
        report["chain"] = (False, "the chain transformation needs a linear program")
    try:
        from ..engines import get_engine

        magic_ok = get_engine("magic").applicable(program, query)
        report["magic"] = (
            (True, "") if magic_ok else (False, "magic sets reject this program/query")
        )
    except Exception:  # pragma: no cover - engines unavailable mid-bootstrap
        report["magic"] = (False, "magic engine unavailable")
    return report


# ---------------------------------------------------------------------------
# The lint driver
# ---------------------------------------------------------------------------

QueryLike = Union[str, Literal]


def lint_source(
    text: str,
    queries: Sequence[QueryLike] = (),
    known_predicates: Iterable[str] = (),
    analyze: bool = False,
) -> List[Diagnostic]:
    """Lint program *text*: parse errors become ``DL101`` diagnostics."""
    from .parser import parse_query, parse_rules

    try:
        rules = parse_rules(text)
        parsed_queries = [
            parse_query(q) if isinstance(q, str) else q for q in queries
        ]
    except DatalogSyntaxError as exc:
        return [exc.diagnostic]
    return lint_rules(
        rules,
        queries=parsed_queries,
        known_predicates=known_predicates,
        analyze=analyze,
    )


def lint_program(
    program: Program,
    queries: Sequence[QueryLike] = (),
    known_predicates: Iterable[str] = (),
    analyze: bool = False,
) -> List[Diagnostic]:
    """Lint an (already constructed) :class:`Program`."""
    from .parser import parse_query

    parsed = [parse_query(q) if isinstance(q, str) else q for q in queries]
    linter = _Linter(
        program.rules, parsed, known_predicates, program=program, analyze=analyze
    )
    return linter.run()


def lint_rules(
    rules: Sequence[Rule],
    queries: Sequence[Literal] = (),
    known_predicates: Iterable[str] = (),
    analyze: bool = False,
) -> List[Diagnostic]:
    """Run every check over a (possibly invalid) rule list.

    Unlike :class:`Program` construction, nothing raises: every problem --
    including the ones construction would reject -- comes back as a
    :class:`Diagnostic`, sorted by source position.  ``analyze=True`` adds
    the abstract-interpretation DL7xx checks (open-world: predicates in
    ``known_predicates`` are assumed non-empty with unknown domains).
    """
    linter = _Linter(rules, queries, known_predicates, analyze=analyze)
    return linter.run()


def check_program(
    program: Program,
    database: Optional[object] = None,
    queries: Sequence[QueryLike] = (),
) -> List[Diagnostic]:
    """The eager prepare-time driver: errors raise, warnings are returned.

    ``database`` (a :class:`~repro.datalog.database.Database`) contributes
    its relation names as known EDB predicates so externally loaded
    relations do not show up as undefined.  Raises
    :class:`~repro.datalog.errors.StratificationError` (the one error class
    a structurally validated program can still contain); every
    warning/hint-severity diagnostic is returned for the caller to collect.
    """
    from .analysis import Stratification

    if not program.is_positive:
        Stratification.of(program)
    known: Set[str] = set()
    relations = getattr(database, "relations", None)
    if relations:
        known.update(relations.keys())
    diagnostics = lint_program(program, queries=queries, known_predicates=known)
    diagnostics.extend(abstract_diagnostics(program, database=database))
    return sorted(diagnostics, key=Diagnostic.sort_key)


class _Linter:
    """One lint run: rules in, sorted diagnostics out."""

    #: Bodies longer than this skip the (quadratic, backtracking)
    #: subsumption check; everything in the paper is far below it.
    SUBSUMPTION_BODY_LIMIT = 8

    def __init__(
        self,
        rules: Sequence[Rule],
        queries: Sequence[Literal],
        known_predicates: Iterable[str],
        program: Optional[Program] = None,
        analyze: bool = False,
    ):
        self.rules = list(rules)
        self.queries = list(queries)
        self.known = set(known_predicates)
        self.program = program  # reuse the caller's (memoized) analysis
        self.analyze = analyze
        self.diagnostics: List[Diagnostic] = []

    def run(self) -> List[Diagnostic]:
        clashing = self._check_arities()
        for rule in self.rules:
            self.diagnostics.extend(rule_safety_diagnostics(rule))
            self._check_singletons(rule)
            self._check_contradictions(rule)
        self._check_base_derived_overlap()
        self._check_duplicates_and_subsumption()
        # Program construction re-derives arities, so the graph-level checks
        # run on the rules untouched by any arity clash (all of them, in the
        # common case where `clashing` is empty).
        usable = [
            rule
            for rule in self.rules
            if not clashing
            or (
                rule.head.predicate not in clashing
                and all(
                    lit.predicate not in clashing
                    for lit in rule.body
                    if not lit.is_builtin
                )
            )
        ]
        program = (
            self.program
            if self.program is not None and not clashing
            else Program(usable, validate=False)
        )
        self._check_stratification(program)
        self._check_undefined()
        self._check_unused(program)
        self._check_query_feasibility(program)
        if self.analyze:
            self._check_abstract(program)
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def _check_abstract(self, program: Program) -> None:
        """The opt-in DL7xx abstract-interpretation checks (open world)."""
        try:
            self.diagnostics.extend(
                abstract_diagnostics(program, known=self.known)
            )
        except Exception:
            # Lint never raises; a rule list broken enough to defeat the
            # abstract interpreter already produced error diagnostics above.
            pass

    # -- structural errors -------------------------------------------------

    def _check_arities(self) -> Set[str]:
        arities: Dict[str, Tuple[int, Optional[Span]]] = {}
        clashing: Set[str] = set()
        for rule in self.rules:
            literals = [rule.head] + [
                lit for lit in rule.body if not lit.is_builtin
            ]
            for lit in literals:
                known = arities.get(lit.predicate)
                if known is None:
                    arities[lit.predicate] = (lit.arity, lit.span)
                elif known[0] != lit.arity:
                    clashing.add(lit.predicate)
                    self.diagnostics.append(
                        Diagnostic(
                            code="DL204",
                            severity=Severity.ERROR,
                            message=(
                                f"predicate {lit.predicate!r} is used here with "
                                f"arity {lit.arity} but was first used with "
                                f"arity {known[0]}"
                            ),
                            span=lit.span or rule.span,
                            rule=str(rule),
                            related=(
                                Related(
                                    message=f"first use with arity {known[0]}",
                                    span=known[1],
                                ),
                            ),
                        )
                    )
        return clashing

    def _check_base_derived_overlap(self) -> None:
        derived = {r.head.predicate for r in self.rules if r.body}
        for rule in self.rules:
            if not rule.body and rule.head.predicate in derived:
                self.diagnostics.append(
                    Diagnostic(
                        code="DL205",
                        severity=Severity.ERROR,
                        message=(
                            f"predicate {rule.head.predicate!r} has facts here "
                            "but is also defined by rules; base and derived "
                            "predicates must be disjoint"
                        ),
                        span=rule.span,
                        rule=str(rule),
                        hint=(
                            "rename the fact predicate and add a bridging rule "
                            "if both sources are needed"
                        ),
                    )
                )

    def _check_stratification(self, program: Program) -> None:
        if program.is_positive:
            return
        from .analysis import Stratification

        try:
            Stratification.of(program)
        except StratificationError as exc:
            self.diagnostics.append(exc.diagnostic)

    # -- warnings ----------------------------------------------------------

    def _check_singletons(self, rule: Rule) -> None:
        if not rule.body:
            return
        occurrences: Dict[str, int] = {}
        first_span: Dict[str, Optional[Span]] = {}

        def visit(term: Term) -> None:
            if isinstance(term, AggregateTerm):
                visit(term.var)
                return
            if isinstance(term, Variable) and not term.name.startswith("_"):
                occurrences[term.name] = occurrences.get(term.name, 0) + 1
                first_span.setdefault(term.name, term.span)

        for term in rule.head.args:
            visit(term)
        for lit in rule.body:
            for term in lit.args:
                visit(term)
        for name, count in occurrences.items():
            if count == 1:
                self.diagnostics.append(
                    Diagnostic(
                        code="DL403",
                        severity=Severity.WARNING,
                        message=(
                            f"variable {name!r} occurs only once in this rule; "
                            "a name used once never joins with anything"
                        ),
                        span=first_span[name] or rule.span,
                        rule=str(rule),
                        hint=(
                            "replace it with '_' if the position is intentionally "
                            "unused (each '_' is a fresh variable)"
                        ),
                    )
                )

    def _check_contradictions(self, rule: Rule) -> None:
        builtins = rule.builtin_body()
        if not builtins:
            return
        for lit in builtins:
            if lit.arity != 2:
                continue
            if lit.is_ground:
                try:
                    holds = lit.evaluate_builtin()
                except (TypeError, ValueError):
                    continue
                if not holds:
                    self._empty_body(rule, f"comparison {lit} is always false", lit.span)
                    return
            left, right = lit.args
            if (
                isinstance(left, Variable)
                and isinstance(right, Variable)
                and left == right
                and lit.predicate in ("<", ">", "!=")
            ):
                self._empty_body(
                    rule, f"comparison {lit} can never hold", lit.span
                )
                return
        conflict = _interval_conflict(builtins)
        if conflict is not None:
            variable, reason, span = conflict
            self._empty_body(
                rule,
                f"the comparisons on variable {variable!r} are unsatisfiable "
                f"({reason})",
                span,
            )

    def _empty_body(self, rule: Rule, reason: str, span: Optional[Span]) -> None:
        self.diagnostics.append(
            Diagnostic(
                code="DL406",
                severity=Severity.WARNING,
                message=f"{reason}: the rule body is provably empty and the rule "
                "can never derive anything",
                span=span or rule.span,
                rule=str(rule),
                hint="delete the rule or fix the comparison bounds",
            )
        )

    def _check_duplicates_and_subsumption(self) -> None:
        seen: Dict[Rule, Rule] = {}
        for rule in self.rules:
            first = seen.get(rule)
            if first is None:
                seen[rule] = rule
                continue
            kind = "fact" if not rule.body else "rule"
            self.diagnostics.append(
                Diagnostic(
                    code="DL404",
                    severity=Severity.WARNING,
                    message=f"this {kind} is an exact duplicate of an earlier one",
                    span=rule.span,
                    rule=str(rule),
                    related=(
                        Related(message="first occurrence", span=first.span),
                    ),
                )
            )
        # theta-subsumption between distinct rules sharing a head predicate
        by_head: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            if (
                rule.body
                and not rule.is_aggregate
                and len(rule.body) <= self.SUBSUMPTION_BODY_LIMIT
            ):
                by_head.setdefault(rule.head.predicate, []).append(rule)
        flagged: Set[int] = set()
        for group in by_head.values():
            for index, specific in enumerate(group):
                if id(specific) in flagged:
                    continue
                for general_index, general in enumerate(group):
                    if general is specific or general == specific:
                        continue
                    if len(general.body) > len(specific.body):
                        continue
                    if id(general) in flagged:
                        continue
                    if general_index > index and _subsumes(specific, general):
                        # Mutual (alpha-equivalent) pair: only the later
                        # occurrence gets flagged, as its own `specific`.
                        continue
                    if _subsumes(general, specific):
                        flagged.add(id(specific))
                        self.diagnostics.append(
                            Diagnostic(
                                code="DL405",
                                severity=Severity.WARNING,
                                message=(
                                    "this rule is subsumed by the more general "
                                    f"rule {general}: every fact it derives is "
                                    "already derived there"
                                ),
                                span=specific.span,
                                rule=str(specific),
                                related=(
                                    Related(
                                        message="subsuming rule",
                                        span=general.span,
                                    ),
                                ),
                                hint="delete the redundant rule",
                            )
                        )
                        break

    def _check_undefined(self) -> None:
        defined = {rule.head.predicate for rule in self.rules} | self.known
        reported: Set[str] = set()
        for rule in self.rules:
            for lit in rule.body:
                if lit.is_builtin or lit.predicate in defined:
                    continue
                if lit.predicate in reported:
                    continue
                reported.add(lit.predicate)
                self.diagnostics.append(
                    Diagnostic(
                        code="DL401",
                        severity=Severity.WARNING,
                        message=(
                            f"predicate {lit.predicate!r}/{lit.arity} is used "
                            "here but has no rule, no fact, and is not a known "
                            "EDB relation"
                        ),
                        span=lit.span or rule.span,
                        rule=str(rule),
                        hint="load facts for it, define it, or fix the spelling",
                    )
                )

    def _check_unused(self, program: Program) -> None:
        if not program.idb_rules():
            return  # a pure fact file is a data file; everything is queryable
        from .analysis import ProgramAnalysis, reachable_from

        analysis = ProgramAnalysis.of(program)
        graph = analysis.dependency_graph
        if self.queries:
            roots = {query.predicate for query in self.queries}
        else:
            # Without explicit queries, assume the caller queries the
            # top-level derived predicates: heads consumed by no rule of a
            # *different* SCC (a recursive predicate reading itself is still
            # top-level, so the condensation decides, not raw bodies).
            component_of = analysis._component_of
            consumed: Set[str] = set()
            for head, targets in graph.items():
                head_component = component_of.get(head, frozenset({head}))
                for target in targets:
                    if target not in head_component:
                        consumed.add(target)
            roots = {
                p for p in program.derived_predicates if p not in consumed
            }
            if not roots:
                roots = set(program.derived_predicates)
        reachable: Set[str] = set(roots)
        for root in roots:
            reachable |= {str(p) for p in reachable_from(graph, root)}
        reported: Set[str] = set()
        for rule in program.rules:
            predicate = rule.head.predicate
            if predicate in reachable or predicate in reported:
                continue
            if not rule.body and predicate in self.known:
                continue
            reported.add(predicate)
            what = "facts for" if not rule.body else "the rules defining"
            self.diagnostics.append(
                Diagnostic(
                    code="DL402",
                    severity=Severity.HINT,
                    message=(
                        f"{what} {predicate!r} are unreachable from "
                        + (
                            "the linted queries"
                            if self.queries
                            else "every top-level predicate"
                        )
                        + "; nothing can ever read them"
                    ),
                    span=rule.span,
                    rule=str(rule),
                    hint="delete the dead definition or query it explicitly",
                )
            )

    def _check_query_feasibility(self, program: Program) -> None:
        if not self.queries or not program.is_positive:
            return
        from ..core.planner import classify_query
        from .analysis import ProgramAnalysis

        analysis = ProgramAnalysis.of(program)
        for query in self.queries:
            if query.predicate not in program.derived_predicates:
                continue
            if not analysis.is_linear_program():
                continue
            feasible, reason = chain_feasibility(program, query, analysis)
            if feasible:
                continue
            served = classify_query(program, query, analysis)
            self.diagnostics.append(
                Diagnostic(
                    code="DL501",
                    severity=Severity.HINT,
                    message=(
                        f"query {query}: the demand (top-down/magic) strategies "
                        f"cannot execute this binding pattern -- {reason}; "
                        f"it will be served {served}"
                    ),
                    span=query.span,
                )
            )


# ---------------------------------------------------------------------------
# Interval constant-folding over builtin conjunctions
# ---------------------------------------------------------------------------

#: lower/upper bound updates per comparison operator, var-on-the-left form.
_NUMERIC = (int, float)


def _interval_conflict(
    builtins: Sequence[Literal],
) -> Optional[Tuple[str, str, Optional[Span]]]:
    """Find a variable whose numeric comparison bounds are unsatisfiable.

    Folds every ``X op constant`` (and mirrored ``constant op X``)
    comparison into one interval per variable -- ``X < 2, X > 5`` leaves an
    empty interval, as does ``X = a, X = b`` for distinct constants of any
    type.  Returns ``(variable, reason, span)`` for the first conflict, or
    ``None``.  Purely static: no rule with a satisfiable conjunction is
    ever reported (near misses like ``X < 2`` in one rule and ``X > 5`` in
    another fold separately).
    """
    lower: Dict[str, Tuple[float, bool, Literal]] = {}  # value, inclusive
    upper: Dict[str, Tuple[float, bool, Literal]] = {}
    equal: Dict[str, Tuple[object, Literal]] = {}
    for lit in builtins:
        if lit.arity != 2:
            continue
        left, right = lit.args
        op = lit.predicate
        if isinstance(left, Variable) and isinstance(right, Constant):
            variable, value = left, right.value
        elif isinstance(left, Constant) and isinstance(right, Variable):
            variable, value = right, left.value
            op = _MIRROR.get(op, op)
        else:
            continue
        name = variable.name
        if op in ("=", "=="):
            previous = equal.get(name)
            if previous is not None and previous[0] != value:
                return (
                    name,
                    f"{name} = {previous[0]!r} conflicts with {name} = {value!r}",
                    merge_spans(previous[1].span, lit.span),
                )
            equal[name] = (value, lit)
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                _tighten(lower, name, float(value), True, lit, is_lower=True)
                _tighten(upper, name, float(value), True, lit, is_lower=False)
        elif op in ("<", "<="):
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                _tighten(upper, name, float(value), op == "<=", lit, is_lower=False)
        elif op in (">", ">="):
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                _tighten(lower, name, float(value), op == ">=", lit, is_lower=True)
    for name, (low, low_inclusive, low_lit) in lower.items():
        bound = upper.get(name)
        if bound is None:
            continue
        high, high_inclusive, high_lit = bound
        if low > high or (low == high and not (low_inclusive and high_inclusive)):
            return (
                name,
                f"{low_lit} conflicts with {high_lit}",
                merge_spans(low_lit.span, high_lit.span),
            )
    return None


_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _tighten(
    bounds: Dict[str, Tuple[float, bool, Literal]],
    name: str,
    value: float,
    inclusive: bool,
    lit: Literal,
    is_lower: bool,
) -> None:
    current = bounds.get(name)
    if current is None:
        bounds[name] = (value, inclusive, lit)
        return
    held, held_inclusive, _ = current
    tighter = value > held if is_lower else value < held
    if tighter or (value == held and held_inclusive and not inclusive):
        bounds[name] = (value, inclusive, lit)


# ---------------------------------------------------------------------------
# Theta-subsumption (restricted, for DL405)
# ---------------------------------------------------------------------------

def _subsumes(general: Rule, specific: Rule) -> bool:
    """Does ``general`` theta-subsume ``specific``?

    True when a substitution over ``general``'s variables maps its head to
    ``specific``'s head and every body literal into ``specific``'s body --
    under set semantics the specific rule is then redundant.  Negated
    literals only match negated literals (and vice versa), so the check is
    sound with stratified negation.
    """
    binding: Dict[str, Term] = {}
    if not _match_literal(general.head, specific.head, binding):
        return False
    return _match_body(list(general.body), tuple(specific.body), binding)


def _match_body(
    remaining: List[Literal],
    targets: Tuple[Literal, ...],
    binding: Dict[str, Term],
) -> bool:
    if not remaining:
        return True
    literal = remaining[0]
    for target in targets:
        trial = dict(binding)
        if _match_literal(literal, target, trial):
            if _match_body(remaining[1:], targets, trial):
                binding.clear()
                binding.update(trial)
                return True
    return False


def _match_literal(source: Literal, target: Literal, binding: Dict[str, Term]) -> bool:
    if (
        source.predicate != target.predicate
        or source.negated != target.negated
        or source.arity != target.arity
    ):
        return False
    for source_term, target_term in zip(source.args, target.args):
        if not _match_term(source_term, target_term, binding):
            return False
    return True


def _match_term(source: Term, target: Term, binding: Dict[str, Term]) -> bool:
    if isinstance(source, Constant):
        return isinstance(target, Constant) and source == target
    if isinstance(source, AggregateTerm):
        return (
            isinstance(target, AggregateTerm)
            and source.func == target.func
            and _match_term(source.var, target.var, binding)
        )
    if isinstance(source, Variable):
        bound = binding.get(source.name)
        if bound is None:
            binding[source.name] = target
            return True
        return bound == target
    return False  # pragma: no cover - no other term kinds exist
