"""Program analysis: dependency graph, recursion, and the Section 2 classes.

Step 2 of the Lemma 1 transformation and every classification of Section 2
("recursive", "mutually recursive", "linear", "right-/left-linear",
"regular", "binary-chain") reduces to properties of the *predicate dependency
graph*: the directed graph whose nodes are the predicate symbols and which
has an arc from ``p`` to ``q`` whenever ``q`` occurs in the body of a rule
with head ``p``.  A predicate is recursive iff it lies on a cycle; the set of
predicates mutually recursive to ``p`` is the strongly connected component of
``p`` (when that component is non-trivial).

The dependency graph is *polarity-labelled*: an arc is additionally marked
**negative** when the dependency is non-monotone -- the body literal is
negated, or the rule's head carries an aggregate term (an aggregate value
depends on the full extension of every body predicate, so all of an
aggregate rule's arcs are negative).  :class:`Stratification` orders the
strongly connected components into *strata* such that every negative arc
points strictly downward, which is the precondition of stratified bottom-up
evaluation (:mod:`repro.engines.runtime`); a negative arc *inside* a
component has no stratification and is rejected with
:class:`~repro.datalog.errors.StratificationError`.

The SCC computation is our own iterative Tarjan implementation -- the paper
itself cites Tarjan [21] and we also reuse it inside the evaluation engines.
:meth:`ProgramAnalysis.of` is memoized per :class:`~repro.datalog.rules
.Program` instance (the planner, engines and session layer all re-request
the analysis on hot per-query paths), as is :meth:`Stratification.of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from .errors import StratificationError
from .rules import Program, Rule


# ---------------------------------------------------------------------------
# Generic graph utilities (also used by the traversal engines)
# ---------------------------------------------------------------------------

def strongly_connected_components(
    graph: Mapping[Hashable, Iterable[Hashable]]
) -> List[List[Hashable]]:
    """Tarjan's algorithm, iteratively, in reverse topological order.

    ``graph`` maps each node to an iterable of successors.  Nodes that only
    appear as successors are included automatically.  The returned components
    are ordered so that a component never has an arc into a later one
    (reverse topological order), which is the order in which bottom-up
    stratified evaluation wants to process them.
    """
    successors: Dict[Hashable, List[Hashable]] = {}
    for node, targets in graph.items():
        successors.setdefault(node, [])
        for target in targets:
            successors[node].append(target)
            successors.setdefault(target, [])

    index_counter = 0
    index: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[List[Hashable]] = []

    for root in successors:
        if root in index:
            continue
        # Iterative DFS: each frame is (node, iterator over successors).
        work: List[Tuple[Hashable, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = successors[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work.append((node, child_index))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def reachable_from(
    graph: Mapping[Hashable, Iterable[Hashable]], start: Hashable
) -> Set[Hashable]:
    """The set of nodes reachable from ``start`` (including ``start``)."""
    seen: Set[Hashable] = {start}
    frontier: List[Hashable] = [start]
    while frontier:
        node = frontier.pop()
        for child in graph.get(node, ()):  # type: ignore[arg-type]
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


# ---------------------------------------------------------------------------
# Program analysis proper
# ---------------------------------------------------------------------------

@dataclass
class ProgramAnalysis:
    """Precomputed recursion structure of a program.

    Attributes
    ----------
    program:
        The analysed program.
    dependency_graph:
        predicate -> set of predicates occurring in bodies of its rules.
    sccs:
        Strongly connected components of the dependency graph in reverse
        topological order.
    recursive_predicates:
        Predicates lying on a cycle of the dependency graph.
    """

    program: Program
    dependency_graph: Dict[str, Set[str]] = field(default_factory=dict)
    negative_dependencies: Dict[str, Set[str]] = field(default_factory=dict)
    sccs: List[List[str]] = field(default_factory=list)
    recursive_predicates: Set[str] = field(default_factory=set)
    _component_of: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def of(cls, program: Program) -> "ProgramAnalysis":
        """The (memoized) analysis of ``program``.

        Repeated calls with the same :class:`Program` instance return the
        same object: the planner, the engines and the session layer all ask
        for the analysis on hot per-query paths, and recomputing Tarjan per
        query is pure waste.  The memo lives on the program instance, so its
        lifetime matches the program's.
        """
        cached = program.__dict__.get("_analysis_memo")
        if cached is not None:
            return cached
        analysis = cls._build(program)
        program._analysis_memo = analysis
        return analysis

    @classmethod
    def _build(cls, program: Program) -> "ProgramAnalysis":
        graph: Dict[str, Set[str]] = {p: set() for p in program.predicates}
        negative: Dict[str, Set[str]] = {}
        self_loop: Set[str] = set()
        for rule in program.idb_rules():
            head = rule.head.predicate
            aggregate_rule = rule.is_aggregate
            for literal in rule.body:
                if literal.is_builtin:
                    continue
                graph.setdefault(head, set()).add(literal.predicate)
                if literal.negated or aggregate_rule:
                    negative.setdefault(head, set()).add(literal.predicate)
                if literal.predicate == head:
                    self_loop.add(head)
        analysis = cls(
            program=program, dependency_graph=graph, negative_dependencies=negative
        )
        analysis.sccs = strongly_connected_components(graph)
        for component in analysis.sccs:
            members = frozenset(component)
            nontrivial = len(component) > 1 or (
                len(component) == 1 and component[0] in self_loop
            )
            for predicate in component:
                analysis._component_of[predicate] = members
                if nontrivial:
                    analysis.recursive_predicates.add(predicate)
        return analysis

    # -- polarity ----------------------------------------------------------

    def is_positive_program(self) -> bool:
        """True for plain positive Datalog (no negation, no aggregation)."""
        return self.program.is_positive

    def depends_negatively(self, head: str, predicate: str) -> bool:
        """True when some rule of ``head`` reads ``predicate`` non-monotonically."""
        return predicate in self.negative_dependencies.get(head, ())

    # -- recursion structure ------------------------------------------------

    def is_recursive_predicate(self, predicate: str) -> bool:
        """True when ``predicate`` is mutually recursive to itself."""
        return predicate in self.recursive_predicates

    def mutually_recursive_set(self, predicate: str) -> FrozenSet[str]:
        """The predicates mutually recursive to ``predicate``.

        For a non-recursive predicate this is the empty set (a predicate is
        mutually recursive to itself only when it is recursive).
        """
        if predicate not in self.recursive_predicates:
            return frozenset()
        return self._component_of.get(predicate, frozenset())

    def are_mutually_recursive(self, p: str, q: str) -> bool:
        """True when ``p`` and ``q`` are mutually recursive."""
        if p not in self.recursive_predicates or q not in self.recursive_predicates:
            return False
        return self._component_of.get(p) is self._component_of.get(q) or (
            self._component_of.get(p) == self._component_of.get(q)
        )

    def recursive_components(self) -> List[FrozenSet[str]]:
        """Maximal sets of mutually recursive predicates, bottom-up order."""
        result = []
        for component in self.sccs:
            members = frozenset(component)
            if members & self.recursive_predicates:
                result.append(members)
        return result

    def evaluation_order(self) -> List[FrozenSet[str]]:
        """All SCCs (recursive or not) in reverse topological order."""
        return [frozenset(c) for c in self.sccs]

    # -- rule classes ----------------------------------------------------------

    def is_recursive_rule(self, rule: Rule) -> bool:
        """Head predicate mutually recursive to some body predicate."""
        head = rule.head.predicate
        return any(
            self.are_mutually_recursive(head, lit.predicate)
            for lit in rule.body
            if not lit.is_builtin
        )

    def is_linear_rule(self, rule: Rule) -> bool:
        """At most one body literal is mutually recursive to the head."""
        head = rule.head.predicate
        count = sum(
            1
            for lit in rule.body
            if not lit.is_builtin and self.are_mutually_recursive(head, lit.predicate)
        )
        return count <= 1

    def is_right_linear_rule(self, rule: Rule) -> bool:
        """Binary-chain rule with recursion only allowed in the last position."""
        if not rule.is_binary_chain_rule():
            return False
        head = rule.head.predicate
        for literal in rule.body[:-1]:
            if self.are_mutually_recursive(head, literal.predicate):
                return False
        return True

    def is_left_linear_rule(self, rule: Rule) -> bool:
        """Binary-chain rule with recursion only allowed in the first position."""
        if not rule.is_binary_chain_rule():
            return False
        head = rule.head.predicate
        for literal in rule.body[1:]:
            if self.are_mutually_recursive(head, literal.predicate):
                return False
        return True

    # -- program / predicate classes ----------------------------------------------

    def is_recursive_program(self) -> bool:
        """True when the program contains at least one recursive rule."""
        return any(self.is_recursive_rule(r) for r in self.program.idb_rules())

    def is_linear_program(self) -> bool:
        """True when every rule is linear."""
        return all(self.is_linear_rule(r) for r in self.program.idb_rules())

    def is_linearly_recursive_program(self) -> bool:
        """Linear program with at least one recursive rule."""
        return self.is_linear_program() and self.is_recursive_program()

    def is_binary_chain_program(self) -> bool:
        """All predicates binary and all intensional rules binary-chain rules."""
        for predicate in self.program.predicates:
            try:
                if self.program.arity(predicate) != 2:
                    return False
            except KeyError:
                continue
        return all(r.is_binary_chain_rule() for r in self.program.idb_rules())

    def is_right_linear_predicate(self, predicate: str) -> bool:
        """All rules of predicates mutually recursive to ``predicate`` are right-linear."""
        group = self.mutually_recursive_set(predicate) or frozenset({predicate})
        for member in group:
            for rule in self.program.rules_for(member):
                if rule.body and not self.is_right_linear_rule(rule):
                    return False
        return True

    def is_left_linear_predicate(self, predicate: str) -> bool:
        """All rules of predicates mutually recursive to ``predicate`` are left-linear."""
        group = self.mutually_recursive_set(predicate) or frozenset({predicate})
        for member in group:
            for rule in self.program.rules_for(member):
                if rule.body and not self.is_left_linear_rule(rule):
                    return False
        return True

    def is_regular_predicate(self, predicate: str) -> bool:
        """Right-linear or left-linear (Section 2)."""
        return self.is_right_linear_predicate(predicate) or self.is_left_linear_predicate(
            predicate
        )

    def is_regular_program(self) -> bool:
        """Binary-chain program all of whose derived predicates are regular."""
        if not self.is_binary_chain_program():
            return False
        return all(self.is_regular_predicate(p) for p in self.program.derived_predicates)

    def has_single_recursive_rule_per_nonregular_predicate(self) -> bool:
        """The premise of statement (6) of Lemma 1.

        For each nonregular predicate ``q`` there is at most one rule whose
        head is ``q`` and whose body contains a predicate mutually recursive
        to ``q``.
        """
        for predicate in self.program.derived_predicates:
            if self.is_regular_predicate(predicate):
                continue
            recursive_rules = [
                r for r in self.program.rules_for(predicate) if self.is_recursive_rule(r)
            ]
            if len(recursive_rules) > 1:
                return False
        return True


# ---------------------------------------------------------------------------
# Stratification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Stratum:
    """One layer of a stratification.

    Attributes
    ----------
    index:
        0-based stratum number; negative dependencies always point from a
        higher stratum into a strictly lower one.
    predicates:
        Every predicate assigned to this stratum (base predicates and
        negation-free derived predicates share stratum 0).
    components:
        The strongly connected components of this stratum in evaluation
        order (the reverse topological order of
        :func:`strongly_connected_components`, filtered to the stratum).
    """

    index: int
    predicates: FrozenSet[str]
    components: Tuple[FrozenSet[str], ...]


@dataclass
class Stratification:
    """An assignment of predicates to strata with all negative arcs downward.

    ``Stratification.of(program)`` is the single entry point; it reuses the
    (memoized) :class:`ProgramAnalysis` SCC machinery and is itself memoized
    per analysis.  A positive program always stratifies into exactly one
    stratum whose component sequence is ``analysis.evaluation_order()`` --
    which is why the stratified runtime runs positive programs bit-identically
    to the historical single-fixpoint engines.

    Raises
    ------
    StratificationError
        When a predicate depends on a member of its own recursive component
        through negation or aggregation (no stratification exists).
    """

    program: Program
    analysis: ProgramAnalysis
    strata: List[Stratum]
    stratum_of: Dict[str, int]

    @classmethod
    def of(cls, program: Program, analysis: Optional[ProgramAnalysis] = None) -> "Stratification":
        analysis = analysis or ProgramAnalysis.of(program)
        cached = analysis.__dict__.get("_stratification_memo")
        if cached is not None:
            return cached
        stratification = cls._build(program, analysis)
        analysis._stratification_memo = stratification
        return stratification

    @classmethod
    def _build(cls, program: Program, analysis: ProgramAnalysis) -> "Stratification":
        component_of = analysis._component_of
        stratum_of_component: Dict[FrozenSet[str], int] = {}
        stratum_of: Dict[str, int] = {}
        # analysis.sccs is in reverse topological order: every dependency of a
        # component appears before it, so one forward pass suffices.
        for component in analysis.sccs:
            members = frozenset(component)
            level = 0
            for predicate in component:
                negative = analysis.negative_dependencies.get(predicate, ())
                for dependency in analysis.dependency_graph.get(predicate, ()):
                    target = component_of.get(dependency, frozenset({dependency}))
                    if target == members:
                        if dependency in negative:
                            # Imported lazily: diagnostics imports this module.
                            from .diagnostics import stratification_cycle_diagnostic

                            message = cls._cycle_message(
                                program, members, predicate, dependency
                            )
                            raise StratificationError(
                                message,
                                diagnostic=stratification_cycle_diagnostic(
                                    program,
                                    analysis.dependency_graph,
                                    members,
                                    predicate,
                                    dependency,
                                    message,
                                ),
                            )
                        continue
                    dependency_level = stratum_of_component.get(target, 0)
                    if dependency in negative:
                        dependency_level += 1
                    level = max(level, dependency_level)
            stratum_of_component[members] = level
            for predicate in component:
                stratum_of[predicate] = level

        height = max(stratum_of_component.values(), default=0) + 1
        strata: List[Stratum] = []
        for index in range(height):
            components = tuple(
                frozenset(component)
                for component in analysis.sccs
                if stratum_of_component[frozenset(component)] == index
            )
            predicates = frozenset(p for c in components for p in c)
            strata.append(Stratum(index, predicates, components))
        return cls(
            program=program, analysis=analysis, strata=strata, stratum_of=stratum_of
        )

    @staticmethod
    def _cycle_message(
        program: Program, component: FrozenSet[str], head: str, dependency: str
    ) -> str:
        """Name the exact rule that makes the program non-stratifiable."""
        for rule in program.rules_for(head):
            if rule.is_aggregate and any(
                lit.predicate == dependency for lit in rule.body if not lit.is_builtin
            ):
                via = "an aggregate head"
                witness = rule
                break
            if any(
                lit.negated and lit.predicate == dependency for lit in rule.body
            ):
                via = "negation"
                witness = rule
                break
        else:  # pragma: no cover - callers always pass a real offender
            via, witness = "negation", None
        rule_part = f" (rule: {witness})" if witness is not None else ""
        return (
            f"program is not stratifiable: {head!r} depends on {dependency!r} "
            f"through {via} inside the recursive component "
            f"{sorted(component)}{rule_part}"
        )

    # -- convenience views --------------------------------------------------

    @property
    def height(self) -> int:
        """Number of strata (1 for every positive program)."""
        return len(self.strata)

    @property
    def is_single_stratum(self) -> bool:
        """True when the whole program evaluates as one (positive) stratum."""
        return len(self.strata) == 1

    def stratum_rules(self, stratum: Stratum) -> List[Rule]:
        """The intensional rules headed in ``stratum``, in program order."""
        return [
            rule
            for rule in self.program.idb_rules()
            if rule.head.predicate in stratum.predicates
        ]

    def inputs_of(self, stratum: Stratum) -> FrozenSet[str]:
        """Every predicate read by a rule of ``stratum`` (any polarity)."""
        read: Set[str] = set()
        for rule in self.stratum_rules(stratum):
            for literal in rule.body:
                if not literal.is_builtin:
                    read.add(literal.predicate)
        return frozenset(read)

    def lowest_affected_stratum(self, predicates: Iterable[str]) -> Optional[int]:
        """Index of the lowest stratum reading any of ``predicates``.

        ``None`` when no stratum reads them (the delta is invisible to the
        program).  This is the restart point of the non-monotone resume path
        (:func:`repro.engines.runtime.resume_stratified`).
        """
        touched = set(predicates)
        if not touched:
            return None
        for stratum in self.strata:
            if self.inputs_of(stratum) & touched:
                return stratum.index
        return None


def analyze(program: Program) -> ProgramAnalysis:
    """Convenience wrapper: :meth:`ProgramAnalysis.of` (memoized per program)."""
    return ProgramAnalysis.of(program)
