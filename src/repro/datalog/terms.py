"""Terms of the Datalog language: variables and constants.

The paper (Section 2) defines a term as *a variable or a constant*.  There
are no function symbols in Datalog, so terms never nest -- with one pragmatic
exception used by the Section 4 transformation: the transformed binary-chain
program manipulates *tuples of constants* as single domain elements (the
``t(X^b)`` / ``t(X^f)`` notation of the paper).  We therefore allow the value
carried by a :class:`Constant` to be any hashable Python object, including a
tuple of other constant values.

Both classes are immutable and hashable so they can live in sets and be used
as dictionary keys, which the evaluation engines rely on heavily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .spans import Span


class Term:
    """Abstract base class for :class:`Variable` and :class:`Constant`.

    Every term carries an optional source :attr:`span` set by the parser --
    pure metadata that never participates in equality or hashing (two
    ``Variable("X")`` occurrences are the same variable wherever they were
    read).  Programmatically built terms have ``span = None``.
    """

    __slots__ = ()

    #: Optional source location; declared per subclass (slots) and defaulted
    #: in each constructor.
    span: "Optional[Span]"

    @property
    def is_variable(self) -> bool:
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return not self.is_variable


#: Name prefix of parser-generated anonymous variables.  ``#`` cannot occur
#: in a lexed identifier, so these names can never collide with (or be
#: written as) user variables.
ANONYMOUS_PREFIX = "_#"


class Variable(Term):
    """A logical variable, identified by its name.

    Two variables with the same name are the same variable.  By the textual
    convention of :mod:`repro.datalog.parser`, variable names start with an
    upper-case letter or an underscore, but the class itself accepts any
    non-empty string.

    **Anonymous variables.**  Each ``_`` in program text parses to a *fresh*
    anonymous variable (named ``_#0``, ``_#1``, ... in occurrence order, per
    clause), so two wildcards never unify with each other -- ``q(X, _, _)``
    matches rows whose last two components differ.  Anonymous variables
    print back as ``_``, are exempt from the range restriction inside
    negated literals (they are existentially quantified within the
    anti-join) and otherwise behave as ordinary variables.
    """

    __slots__ = ("name", "span")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("variable name must be a non-empty string")
        self.name = name
        self.span = None

    @property
    def is_variable(self) -> bool:
        return True

    @property
    def is_anonymous(self) -> bool:
        """True for ``_`` and the parser's per-occurrence ``_#k`` variables."""
        return self.name == "_" or self.name.startswith(ANONYMOUS_PREFIX)

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return "_" if self.is_anonymous else self.name


class Constant(Term):
    """A constant, wrapping an arbitrary hashable Python value.

    Strings, integers and tuples of such values are the typical payloads.
    Equality and hashing delegate to the wrapped value, so ``Constant(3)``
    and ``Constant(3)`` are interchangeable.
    """

    __slots__ = ("value", "span")

    def __init__(self, value):
        hash(value)  # fail fast on unhashable payloads
        self.value = value
        self.span = None

    @property
    def is_variable(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return format_constant_value(self.value)


#: The aggregation functions an :class:`AggregateTerm` may carry.  Each maps
#: the *set* of distinct values its variable takes within a group (Datalog is
#: set-based, so duplicates across derivations never exist) to one value.
AGGREGATE_FUNCTIONS = {
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
}


class AggregateTerm(Term):
    """An aggregate head argument such as ``min(C)`` or ``count(Y)``.

    Only legal in the *head* of a rule (the stratified-aggregation
    extension): the rule's answers are grouped by the head's plain variables
    and ``func`` folds the set of distinct values ``var`` takes within each
    group.  An aggregate term is neither a variable nor a constant; the rest
    of the substrate treats it opaquely and the plan layer compiles it into a
    post-fixpoint fold (:class:`repro.datalog.plans.AggregateFold`).
    """

    __slots__ = ("func", "var", "span")

    def __init__(self, func: str, var: "Variable"):
        if func not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"unknown aggregate function {func!r}; "
                f"expected one of {sorted(AGGREGATE_FUNCTIONS)}"
            )
        if not isinstance(var, Variable):
            raise ValueError(f"aggregate {func}(...) takes a variable, got {var!r}")
        self.func = func
        self.var = var
        self.span = None

    @property
    def is_variable(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, AggregateTerm)
            and self.func == other.func
            and self.var == other.var
        )

    def __hash__(self) -> int:
        return hash(("AggregateTerm", self.func, self.var))

    def __repr__(self) -> str:
        return f"AggregateTerm({self.func!r}, {self.var!r})"

    def __str__(self) -> str:
        return f"{self.func}({self.var})"


TermLike = Union[Term, str, int, float, tuple]


#: Escape table shared by :func:`quote_string` and the lexer's unescaper.
STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r"}


def quote_string(value: str) -> str:
    """A double-quoted rendering the parser reads back to exactly ``value``.

    Backslashes, double quotes and the common control characters are escaped
    (``\\\\``, ``\\"``, ``\\n``, ``\\t``, ``\\r``), so strings containing
    quotes -- or both quote characters at once -- survive a print/reparse
    cycle, which plain ``repr`` quoting did not guarantee.
    """
    escaped = "".join(STRING_ESCAPES.get(ch, ch) for ch in value)
    return f'"{escaped}"'


def format_constant_value(value) -> str:
    """Render a constant payload the way the parser would accept it back."""
    if isinstance(value, tuple):
        inner = ", ".join(format_constant_value(v) for v in value)
        return f"t({inner})"
    if isinstance(value, str):
        if value and (value[0].islower() or value[0].isdigit()) and all(
            ch.isalnum() or ch == "_" for ch in value
        ):
            return value
        return quote_string(value)
    return repr(value)


def make_term(value: TermLike) -> Term:
    """Coerce a convenient Python value into a :class:`Term`.

    * :class:`Term` instances are returned unchanged.
    * Strings starting with an upper-case letter or ``_`` become variables
      (matching the parser's convention).
    * Everything else becomes a constant.

    This helper keeps the programmatic API terse::

        Literal("up", ["X", "a"])     # Variable("X"), Constant("a")
        Literal("edge", [1, 2])       # Constant(1), Constant(2)
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


def make_constant(value) -> Constant:
    """Coerce a raw value into a :class:`Constant` (never a variable)."""
    if isinstance(value, Constant):
        return value
    if isinstance(value, Variable):
        raise ValueError(f"expected a constant, got variable {value.name}")
    return Constant(value)
