"""Semantics-preserving program transformations (the program optimizer).

The abstract interpretation of :mod:`repro.datalog.abstract` proves facts
*about* a program; this module spends them, rewriting the program into a
smaller one that derives exactly the same answers:

* **never-fires elimination** -- a rule the converged analysis proves can
  derive nothing under the current extensional database is dropped;
* **constant propagation** -- a variable whose inferred rule-local domain is
  a single known value is replaced by that value everywhere in the rule;
* **subsumption minimization** -- a rule theta-subsumed by another rule of
  the same predicate is redundant under set semantics and is dropped (the
  rewrite DL405 only warns about);
* **unfolding** -- a non-recursive predicate with a single defining rule
  that never occurs negated is inlined into its callers;
* **dead-rule / dead-predicate elimination** -- rules (and embedded facts)
  whose head is unreachable from the queried predicates are dropped.

Every pass preserves the stratified model restricted to the queried
predicates: the differential test suite proves answers identical against
the untransformed program for every engine x storage mode x plan mode x
execution mode.

The optimizer sits behind a process-wide mode switch exactly like the plan
compiler's (:func:`repro.datalog.plans.set_plan_mode`):

* ``"off"`` (default) -- :meth:`repro.engines.base.Engine.answer` runs the
  program as written; every paper-sample counter pin stays bit-identical;
* ``"on"`` -- ``answer`` rewrites the program (guarded by the engine's
  applicability check: an engine restricted to a syntactic class falls back
  to the original program when the rewrite leaves the class).

Transforms apply to one-shot evaluation only.  Incremental sessions
(:meth:`~repro.session.session.Session.materialize` / resume) keep the
program as written: constant propagation and never-fires elimination are
justified by the *current* EDB and would be unsound across later inserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .abstract import AbstractAnalysis
from .analysis import ProgramAnalysis, reachable_from
from .literals import Literal
from .rules import Program, Rule
from .terms import AggregateTerm, Constant, Term, Variable

from .diagnostics import _subsumes

#: Subsumption checks are exponential in the body size; same cap as the
#: diagnostics layer's DL405 (``_Linter.SUBSUMPTION_BODY_LIMIT``).
SUBSUMPTION_BODY_LIMIT = 8

#: Unfolding stops growing a body beyond this many literals; inlining past
#: that trades rule count for join width the planner then has to claw back.
UNFOLD_BODY_LIMIT = 12

_PROGRAM_OPT_OFF = "off"
_PROGRAM_OPT_ON = "on"
_PROGRAM_OPT = _PROGRAM_OPT_OFF


def set_program_opt(mode: str) -> None:
    """Select the program-optimizer mode: ``"off"`` (default) or ``"on"``."""
    global _PROGRAM_OPT
    if mode not in (_PROGRAM_OPT_OFF, _PROGRAM_OPT_ON):
        raise ValueError(f"unknown program optimizer mode {mode!r}")
    _PROGRAM_OPT = mode


def get_program_opt() -> str:
    """The active program-optimizer mode."""
    return _PROGRAM_OPT


@contextmanager
def program_opt(mode: str) -> Iterator[None]:
    """Temporarily select a program-optimizer mode."""
    previous = get_program_opt()
    set_program_opt(mode)
    try:
        yield
    finally:
        set_program_opt(previous)


@dataclass
class TransformReport:
    """What the optimizer did to one program."""

    rules_in: int = 0
    rules_out: int = 0
    never_fires_removed: int = 0
    constants_propagated: int = 0
    subsumed_removed: int = 0
    unfolded_predicates: Tuple[str, ...] = ()
    dead_rules_removed: int = 0
    dead_facts_removed: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return (
            self.rules_in != self.rules_out
            or self.constants_propagated > 0
            or bool(self.unfolded_predicates)
        )

    def format(self) -> List[str]:
        """The ``explain()`` rendering, one fact per line."""
        lines = [f"program optimizer: rules {self.rules_in} -> {self.rules_out}"]
        if self.never_fires_removed:
            lines.append(f"  never-fires rules removed: {self.never_fires_removed}")
        if self.constants_propagated:
            lines.append(f"  constants propagated: {self.constants_propagated}")
        if self.subsumed_removed:
            lines.append(f"  subsumed rules removed: {self.subsumed_removed}")
        if self.unfolded_predicates:
            lines.append(
                "  unfolded predicates: "
                + ", ".join(self.unfolded_predicates)
            )
        if self.dead_rules_removed or self.dead_facts_removed:
            lines.append(
                f"  dead rules removed: {self.dead_rules_removed}"
                f" (+{self.dead_facts_removed} dead facts)"
            )
        lines.extend(f"  {note}" for note in self.notes)
        return lines


@dataclass
class TransformResult:
    """The optimized program plus the report of what changed."""

    program: Program
    report: TransformReport


def optimize(
    program: Program,
    queries: Sequence[str] = (),
    database: Optional[object] = None,
) -> TransformResult:
    """Rewrite ``program`` preserving its answers for ``queries``.

    ``queries`` names the predicates whose extensions must be preserved
    (dead-code elimination is relative to them; when empty, every predicate
    is treated as live).  ``database`` supplies the extensional facts the
    never-fires and constant-propagation passes reason from; results are
    memoized per program instance and database version.
    """
    queries_key = tuple(sorted(set(queries)))
    version = database.version if database is not None else None
    key = (queries_key, None if database is None else id(database), version)
    memo = program.__dict__.get("_transform_memo")
    if memo is not None and memo[0] == key:
        return memo[1]
    result = _optimize(program, queries_key, database)
    program._transform_memo = (key, result)
    return result


def _optimize(
    program: Program,
    queries: Tuple[str, ...],
    database: Optional[object],
) -> TransformResult:
    report = TransformReport(rules_in=len(program.rules))
    abstract = AbstractAnalysis.of(program, database)

    # Elimination passes only ever drop rules whose evaluation is provably
    # *silent* (abstract.builtin_safe): a rule with an ordered comparison
    # over possibly-incompatible sorts raises TypeError when evaluated, and
    # removing it would turn that raise into a success -- not semantics-
    # preserving, however dead the rule is.
    rules: List[Rule] = []
    for rule in program.rules:
        if rule.body and abstract.never_fires(rule) and abstract.builtin_safe(rule):
            report.never_fires_removed += 1
            continue
        rules.append(rule)

    rules = [_propagate_constants(rule, abstract, report) for rule in rules]
    rules = _minimize_subsumed(rules, abstract, report)
    rules = _unfold(rules, program, report)
    rules = _eliminate_dead(rules, queries, abstract, report)

    report.rules_out = len(rules)
    if not report.changed:
        return TransformResult(program, report)
    optimized = Program(rules, validate=False)
    return TransformResult(optimized, report)


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------

def _propagate_constants(
    rule: Rule, abstract: AbstractAnalysis, report: TransformReport
) -> Rule:
    """Replace singleton-domain variables by their value, rule-locally."""
    if not rule.body:
        return rule
    env = abstract.environment(rule)
    if env is None:
        return rule
    aggregate_vars = {term.var for term in rule.head.aggregate_terms()}
    substitution: Dict[Variable, Term] = {}
    for variable, column in env.items():
        if variable.is_anonymous or variable in aggregate_vars:
            continue
        if column.is_singleton:
            substitution[variable] = Constant(column.singleton_value())
    if not substitution:
        return rule
    report.constants_propagated += len(substitution)
    return _substitute_rule(rule, substitution)


def _substitute_rule(rule: Rule, substitution: Dict[Variable, Term]) -> Rule:
    head = _substitute_literal(rule.head, substitution)
    body = tuple(_substitute_literal(lit, substitution) for lit in rule.body)
    rewritten = Rule(head, body)
    rewritten.span = rule.span
    return rewritten


def _substitute_literal(
    literal: Literal, substitution: Dict[Variable, Term]
) -> Literal:
    args: List[Term] = []
    changed = False
    for term in literal.args:
        replaced = _substitute_term(term, substitution)
        changed = changed or replaced is not term
        args.append(replaced)
    if not changed:
        return literal
    rewritten = literal.with_args(args)
    rewritten.span = literal.span
    return rewritten


def _substitute_term(term: Term, substitution: Dict[Variable, Term]) -> Term:
    if isinstance(term, Variable):
        return substitution.get(term, term)
    if isinstance(term, AggregateTerm):
        folded = substitution.get(term.var)
        if isinstance(folded, Variable):
            return AggregateTerm(term.func, folded)
        return term
    return term


# ---------------------------------------------------------------------------
# Subsumption-based minimization
# ---------------------------------------------------------------------------

def _minimize_subsumed(
    rules: List[Rule], abstract: AbstractAnalysis, report: TransformReport
) -> List[Rule]:
    """Drop rules theta-subsumed by an earlier (or surviving) rule.

    Aggregate-headed rules are exempt: two aggregate rules fold their own
    answer sets independently, so a subsumed rule's *folded* output is not
    a subset of the subsumer's.  A subsumed rule that is not
    :meth:`~AbstractAnalysis.builtin_safe` is kept too -- dropping it would
    also drop the ``TypeError`` its evaluation raises.
    """
    by_head: Dict[str, List[int]] = {}
    for position, rule in enumerate(rules):
        if rule.body:
            by_head.setdefault(rule.head.predicate, []).append(position)
    dropped: Set[int] = set()
    for positions in by_head.values():
        for i_index, i in enumerate(positions):
            if i in dropped:
                continue
            left = rules[i]
            if left.is_aggregate or len(left.body) > SUBSUMPTION_BODY_LIMIT:
                continue
            for j in positions[i_index + 1 :]:
                if j in dropped:
                    continue
                right = rules[j]
                if right.is_aggregate or len(right.body) > SUBSUMPTION_BODY_LIMIT:
                    continue
                if _subsumes(left, right) and abstract.builtin_safe(right):
                    dropped.add(j)
                elif _subsumes(right, left) and abstract.builtin_safe(left):
                    dropped.add(i)
                    break
    if dropped:
        report.subsumed_removed += len(dropped)
        return [rule for position, rule in enumerate(rules) if position not in dropped]
    return rules


# ---------------------------------------------------------------------------
# Unfolding
# ---------------------------------------------------------------------------

def _unfold(
    rules: List[Rule], original: Program, report: TransformReport
) -> List[Rule]:
    """Inline non-recursive single-definition predicates into their callers.

    A predicate qualifies when it is defined by exactly one surviving rule,
    is not recursive, never occurs negated anywhere, and its defining rule
    carries no negation and no aggregate head (inlining either would move a
    non-monotone construct across a rule boundary).
    """
    program = Program(rules, validate=False)
    analysis = ProgramAnalysis.of(program)
    negated_anywhere: Set[str] = set()
    for rule in rules:
        for literal in rule.body:
            if literal.negated:
                negated_anywhere.add(literal.predicate)

    candidates: Dict[str, Rule] = {}
    for predicate in program.derived_predicates:
        definitions = [r for r in program.rules_for(predicate) if r.body]
        if len(definitions) != 1:
            continue
        definition = definitions[0]
        if (
            predicate in analysis.recursive_predicates
            or predicate in negated_anywhere
            or definition.is_aggregate
            or any(lit.negated for lit in definition.body)
        ):
            continue
        candidates[predicate] = definition

    if not candidates:
        return rules

    unfolded: Set[str] = set()
    result: List[Rule] = []
    for rule in rules:
        rewritten = rule
        for predicate, definition in candidates.items():
            if rewritten.head.predicate == predicate:
                continue
            if any(
                lit.predicate == predicate and not lit.negated
                for lit in rewritten.body
                if not lit.is_builtin
            ):
                inlined = _unfold_rule(rewritten, predicate, definition)
                if inlined is not None:
                    rewritten = inlined
                    unfolded.add(predicate)
        result.append(rewritten)
    if unfolded:
        report.unfolded_predicates = tuple(sorted(unfolded))
    return result


def _unfold_rule(rule: Rule, predicate: str, definition: Rule) -> Optional[Rule]:
    """Unfold every positive ``predicate`` call in ``rule``, one at a time.

    The definition is non-recursive, so each expansion strictly removes one
    call and the loop terminates.  Returns ``None`` when nothing changed or
    the inlined body would exceed :data:`UNFOLD_BODY_LIMIT`.
    """
    changed = False
    while True:
        target_index = next(
            (
                index
                for index, lit in enumerate(rule.body)
                if not lit.is_builtin
                and not lit.negated
                and lit.predicate == predicate
            ),
            None,
        )
        if target_index is None:
            break
        target = rule.body[target_index]
        expansion = _expand_call(target, definition, {v.name for v in rule.variables()})
        if expansion is None:
            # Unification failed (constant clash): the call matches nothing;
            # leave the literal for the never-fires pass.
            break
        substitution, inlined = expansion
        new_body: List[Literal] = []
        for index, lit in enumerate(rule.body):
            if index == target_index:
                new_body.extend(inlined)
            else:
                new_body.append(lit)
        if len(new_body) > UNFOLD_BODY_LIMIT:
            break
        head = rule.head
        if substitution:
            head = _substitute_literal(head, substitution)
            new_body = [_substitute_literal(lit, substitution) for lit in new_body]
        span = rule.span
        rule = Rule(head, new_body)
        rule.span = span
        changed = True
    return rule if changed else None


def _expand_call(
    call: Literal, definition: Rule, taken: Set[str]
) -> Optional[Tuple[Dict[Variable, Term], List[Literal]]]:
    """Inline one call: unify the call args with the definition head.

    Definition-local variables are first renamed apart from every caller
    name, so one substitution over the (now disjoint) variable spaces is
    enough; the caller applies it to its whole rule and to the returned
    body literals alike.  Returns ``None`` when unification fails (two
    distinct constants meet).
    """
    renaming: Dict[Variable, Term] = {}
    counter = 0
    for variable in sorted(definition.variables(), key=lambda v: v.name):
        fresh = variable.name
        while fresh in taken:
            counter += 1
            fresh = f"{variable.name}__u{counter}"
        if fresh != variable.name:
            renaming[variable] = Variable(fresh)
        taken.add(fresh)
    head_args = [_substitute_term(term, renaming) for term in definition.head.args]
    body = [_substitute_literal(lit, renaming) for lit in definition.body]

    subst: Dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in subst:
            term = subst[term]
        return term

    for def_term, call_term in zip(head_args, call.args):
        left = resolve(def_term)
        right = resolve(call_term)
        if left == right:
            continue
        if isinstance(left, Variable):
            subst[left] = right
        elif isinstance(right, Variable):
            subst[right] = left
        elif isinstance(left, Constant) and isinstance(right, Constant):
            return None  # distinct constants: the call matches nothing
        else:  # pragma: no cover - aggregate terms never reach a body call
            return None

    # Close substitution chains (X -> A, A -> c  becomes  X -> c).
    closed = {variable: resolve(variable) for variable in subst}
    body = [_substitute_literal(lit, closed) for lit in body]
    return closed, body


# ---------------------------------------------------------------------------
# Query-directed dead-code elimination
# ---------------------------------------------------------------------------

def _eliminate_dead(
    rules: List[Rule],
    queries: Tuple[str, ...],
    abstract: AbstractAnalysis,
    report: TransformReport,
) -> List[Rule]:
    """Keep only rules reachable from the queried predicates.

    With no declared queries every predicate is live and the pass is a
    no-op.  The reachability graph includes negated and aggregate
    dependencies (:attr:`ProgramAnalysis.dependency_graph` is
    polarity-complete), so a stratum a query reads through negation
    survives.
    """
    if not queries:
        return rules
    program = Program(rules, validate=False)
    analysis = ProgramAnalysis.of(program)
    live: Set[str] = set()
    for query in queries:
        live |= reachable_from(analysis.dependency_graph, query)
    # A dead rule that may raise (ordered builtin over possibly-incompatible
    # sorts) must keep evaluating exactly as before: it stays live, and so
    # does everything its body reads -- dropping its input facts would stop
    # the builtin from ever being reached.
    for rule in rules:
        if (
            rule.body
            and rule.head.predicate not in live
            and not abstract.builtin_safe(rule)
        ):
            live.add(rule.head.predicate)
            for literal in rule.body:
                if not literal.is_builtin:
                    live |= reachable_from(
                        analysis.dependency_graph, literal.predicate
                    )
    survivors: List[Rule] = []
    for rule in rules:
        if rule.head.predicate in live:
            survivors.append(rule)
        elif rule.body:
            report.dead_rules_removed += 1
        else:
            report.dead_facts_removed += 1
    return survivors
