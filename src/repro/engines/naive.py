"""Naive bottom-up evaluation [2, 6, 18].

Repeatedly fire every intensional rule over the whole current database until
no new tuple appears, then select the answer from the derived relation.  This
is the completely general method the paper uses as the semantic baseline; its
weaknesses are exactly the ones the introduction lists: every round refires
rules on data already processed (duplication of work) and the whole derived
relation is computed regardless of the query bindings (a large set of
potentially relevant facts).

The loop itself lives in the shared stratified runtime
(:mod:`repro.engines.runtime`): stratified programs run the Jacobi iteration
once per stratum (negated and aggregated inputs are complete by the time a
stratum starts), and a positive program is the 1-stratum special case whose
rounds and counters are bit-identical to the historical global loop.
"""

from __future__ import annotations

from typing import Optional

from ..datalog.analysis import analyze
from ..datalog.database import Database
from ..datalog.literals import Literal
from ..datalog.rules import Program
from ..datalog.semantics import answer_against_relation
from ..instrumentation import Counters
from .base import Engine, EngineResult, Materialization, ModelMaterialization, register
from .runtime import evaluate_stratified


def evaluate_naive(program: Program, database: Database, counters: Counters) -> int:
    """Run the naive fixpoint in place; returns the number of rounds.

    The rules are compiled to join plans once; the refiring of every rule on
    every round -- the duplication the paper measures -- stays.  The rounds
    are the shared runtime's Jacobi stratum driver
    (:func:`repro.engines.runtime.evaluate_stratified` with ``naive=True``).
    """
    return evaluate_stratified(program, database, counters, naive=True)


@register
class NaiveEngine(Engine):
    """Naive (Jacobi-style) bottom-up fixpoint evaluation."""

    name = "naive"

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        iterations = evaluate_naive(program, database, counters)
        answers = answer_against_relation(database.rows(query.predicate), query)
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=iterations,
            details={"derived_size": database.count(query.predicate)},
        )

    def materialize(
        self,
        program: Program,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> Materialization:
        """Compute the full least model naively; answers are lookups.

        The resulting model is identical to the seminaive engine's, so the
        shared seminaive continuation is also the resume path here -- naive
        evaluation has no delta notion of its own, and re-running the whole
        fixpoint is precisely the recomputation resume exists to avoid.
        """
        counters = counters if counters is not None else Counters()
        combined, basis_version = self._materialization_base(program, database, counters)
        evaluate_naive(program, combined, counters)
        return ModelMaterialization(
            self, program, combined, basis_version, counters, analysis=analyze(program)
        )
