"""The counting and reverse-counting methods [3, 14, 16].

Both methods apply to linearly recursive queries whose equation has the shape

    p  =  e0 ∪ e1 · p · e2          (query p(a, Y)).

**Counting** remembers, for every iteration level ``i``, the set of nodes
reached from the query constant through ``i`` applications of ``e1``
(``U_i``), takes the ``e0``-image of each level (``D_i``) and then walks back
down through ``e2`` level by level, reusing the set computed for level
``i+1`` when processing level ``i``:

    A_i = D_i ∪ e2(A_{i+1}),        answer = A_0.

Because each level is processed once, the cost profile matches the paper's
graph-traversal algorithm ("the time bounds for our method are identical to
those of the counting method"), and it terminates only on acyclic data unless
an explicit iteration bound is supplied (the extension of [14]).

**Reverse counting** works from the answer side: it enumerates the candidate
answers (the values that can appear as second argument of ``p``) and verifies
each one by running the counting procedure on the *inverse* equation
``p⁻¹ = e0⁻¹ ∪ e2⁻¹ · p⁻¹ · e1⁻¹`` from the candidate, checking whether the
query constant is reached.  This candidate-at-a-time verification reproduces
the cost profile reported for reverse counting in [3]: linear on sample (a)
of Figure 7 but quadratic on samples (b) and (c).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.cyclic import decompose_linear
from ..core.lemma1 import transform
from ..core.queries import invert_expression
from ..datalog.database import Database
from ..datalog.errors import NotApplicableError
from ..datalog.literals import Literal
from ..datalog.plans import compile_image
from ..datalog.rules import Program
from ..datalog.terms import Constant, Variable
from ..instrumentation import Counters
from ..relalg.expressions import Expression
from .base import Engine, EngineResult, register


def _require_bound_first_argument(query: Literal) -> object:
    if query.arity != 2:
        raise NotApplicableError("counting methods handle binary queries only")
    first = query.args[0]
    if not isinstance(first, Constant):
        raise NotApplicableError(
            "counting methods need the first argument of the query to be bound"
        )
    return first.value


def _project_answers(query: Literal, values: Set[object]) -> Set[tuple]:
    second = query.args[1]
    first = query.args[0]
    if isinstance(second, Constant):
        return {()} if second.value in values else set()
    if isinstance(second, Variable) and second == first:
        return {(v,) for v in values if v == first}
    return {(v,) for v in values}


def counting_levels(
    e1: Optional[Expression],
    start: object,
    database: Database,
    counters: Counters,
    bound: int,
) -> List[Set[object]]:
    """The level sets U_0 = {start}, U_{i+1} = e1(U_i), up to ``bound`` levels."""
    levels: List[Set[object]] = [{start}]
    if e1 is None:
        return levels
    image_e1 = compile_image(e1)
    while levels[-1] and len(levels) <= bound:
        counters.iterations += 1
        levels.append(image_e1(levels[-1], database, counters))
    return levels


def counting_answer(
    decomposition,
    start: object,
    database: Database,
    counters: Counters,
    bound: int,
) -> Set[object]:
    """The counting method proper: up with counts, flat per level, down with counts.

    The three expressions of the decomposition are compiled once
    (:func:`repro.datalog.plans.compile_image`) and the level loops drive the
    compiled closures -- the inner loop of both counting engines.
    """
    e0, e1, e2 = decomposition.base, decomposition.left, decomposition.right
    image_e0 = compile_image(e0)
    levels = counting_levels(e1, start, database, counters, bound)
    per_level_generation = [
        image_e0(level, database, counters) if level else set() for level in levels
    ]
    image_e2 = compile_image(e2) if e2 is not None else None
    accumulated: Set[object] = set()
    for index in range(len(levels) - 1, -1, -1):
        if image_e2 is not None:
            accumulated = image_e2(accumulated, database, counters)
        accumulated |= per_level_generation[index]
    return accumulated


@register
class CountingEngine(Engine):
    """The counting method of Bancilhon et al. [3]."""

    name = "counting"

    def __init__(self, max_levels: Optional[int] = None):
        self.max_levels = max_levels

    def applicable(self, program: Program, query: Literal) -> bool:
        if query.arity != 2 or not isinstance(query.args[0], Constant):
            return False
        try:
            decompose_linear(transform(program).system, query.predicate)
            return True
        except NotApplicableError:
            return False

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        start = _require_bound_first_argument(query)
        system = transform(program).system
        decomposition = decompose_linear(system, query.predicate)
        bound = self.max_levels
        if bound is None:
            bound = database.active_domain_size() + 1
        values = counting_answer(decomposition, start, database, counters, bound)
        return EngineResult(
            answers=_project_answers(query, values),
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={"decomposition": decomposition},
        )


@register
class ReverseCountingEngine(Engine):
    """Reverse counting: verify candidate answers through the inverse equation."""

    name = "reverse-counting"

    def __init__(self, max_levels: Optional[int] = None):
        self.max_levels = max_levels

    def applicable(self, program: Program, query: Literal) -> bool:
        return CountingEngine().applicable(program, query)

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        start = _require_bound_first_argument(query)
        system = transform(program).system
        decomposition = decompose_linear(system, query.predicate)
        e0, e1, e2 = decomposition.base, decomposition.left, decomposition.right
        bound = self.max_levels
        if bound is None:
            bound = database.active_domain_size() + 1

        # Candidate answers: anything that can appear as the second argument
        # of p, i.e. in the range of e0 possibly pushed through e2.
        candidates = _candidate_answers(e0, e2, database, counters)

        # The inverse decomposition: p^-1 = e0^-1 U e2^-1 . p^-1 . e1^-1.
        inverse_base = invert_expression(e0, set())
        inverse_left = invert_expression(e2, set()) if e2 is not None else None
        inverse_right = invert_expression(e1, set()) if e1 is not None else None

        class _InverseDecomposition:
            base = inverse_base
            left = inverse_left
            right = inverse_right

        answers: Set[object] = set()
        for candidate in sorted(candidates, key=repr):
            reached = counting_answer(_InverseDecomposition, candidate, database, counters, bound)
            if start in reached:
                answers.add(candidate)
        return EngineResult(
            answers=_project_answers(query, answers),
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={"candidates": len(candidates)},
        )


def _candidate_answers(
    e0: Expression,
    e2: Optional[Expression],
    database: Database,
    counters: Counters,
) -> Set[object]:
    """Values that can occur as the second argument of the queried relation.

    Enumerated from the kernel's per-column code sets (O(distinct values)
    per predicate instead of a row scan); the ``candidate_answers`` charge is
    unchanged because the set of candidates is.
    """
    candidates: Set[object] = set()
    for name in e0.predicates():
        candidates |= database.column_values(name, -1)
    if e2 is not None:
        for name in e2.predicates():
            candidates |= database.column_values(name, -1)
    counters.bump("candidate_answers", len(candidates))
    return candidates
