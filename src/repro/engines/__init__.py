"""Baseline evaluation strategies for the comparison experiments.

The registry (:func:`available_engines`) exposes:

========================  ====================================================
name                      strategy
========================  ====================================================
``naive``                 naive bottom-up fixpoint [2, 6, 18]
``seminaive``             seminaive (differential) bottom-up fixpoint [2]
``topdown``               memoised top-down resolution (QSQ / tabled PROLOG) [24]
``henschen-naqvi``        the Henschen-Naqvi iterative method [7]
``magic``                 magic-sets rewriting + seminaive [3, 5]
``counting``              the counting method [3, 16]
``reverse-counting``      reverse counting (candidate verification) [3]
``graph``                 the paper's graph-traversal strategy (Sections 3-4)
========================  ====================================================
"""

from .base import (
    DemandMaterialization,
    Engine,
    EngineResult,
    Materialization,
    ModelMaterialization,
    available_engines,
    get_engine,
    register,
)
from .counting import CountingEngine, ReverseCountingEngine
from .graph import GraphTraversalEngine
from .henschen_naqvi import HenschenNaqviEngine
from .magic import MagicSetsEngine, rewrite_magic
from .naive import NaiveEngine, evaluate_naive
from .runtime import evaluate_stratified, resume_stratified
from .seminaive import SeminaiveEngine, evaluate_seminaive, resume_seminaive
from .topdown import TopDownEngine


def run_engine(name, program, query, database=None, counters=None):
    """Instantiate engine ``name`` and answer ``query`` with it."""
    return get_engine(name).answer(program, query, database=database, counters=counters)


__all__ = [
    "CountingEngine",
    "DemandMaterialization",
    "Engine",
    "EngineResult",
    "GraphTraversalEngine",
    "HenschenNaqviEngine",
    "MagicSetsEngine",
    "Materialization",
    "ModelMaterialization",
    "NaiveEngine",
    "ReverseCountingEngine",
    "SeminaiveEngine",
    "TopDownEngine",
    "available_engines",
    "evaluate_naive",
    "evaluate_seminaive",
    "evaluate_stratified",
    "get_engine",
    "register",
    "resume_seminaive",
    "resume_stratified",
    "rewrite_magic",
    "run_engine",
]
