"""The paper's own strategy packaged behind the common engine interface.

This is a thin adapter around :func:`repro.core.planner.evaluate_query` so
the comparison benchmarks can run "our algorithm" next to the baselines with
identical instrumentation and result types.
"""

from __future__ import annotations


from ..core.planner import evaluate_query
from ..datalog.database import Database
from ..datalog.literals import Literal
from ..datalog.rules import Program
from ..instrumentation import Counters
from .base import Engine, EngineResult, register


@register
class GraphTraversalEngine(Engine):
    """Lemma 1 + EM(p, i) + demand-driven graph traversal (Sections 3-4)."""

    name = "graph"

    def __init__(self, strategy: str = "auto"):
        self.strategy = strategy

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        answer = evaluate_query(
            program, query, database=database, strategy=self.strategy, counters=counters
        )
        return EngineResult(
            answers=answer.answers,
            engine=self.name,
            counters=counters,
            iterations=answer.iterations,
            details={"strategy": answer.strategy, **answer.details},
        )
