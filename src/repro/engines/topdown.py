"""Top-down evaluation with memoisation (the QSQ / tabled-PROLOG baseline).

PROLOG's SLD resolution is one of the evaluation methods the paper's
introduction lists; plain SLD does not terminate on cyclic data and
duplicates work heavily, so deductive-database systems use its memoised
variants (query/subquery [24], OLDT).  This engine implements a simple
recursive QSQR-style evaluation:

* subgoals are generalised to *adorned calls* ``(predicate, bound pattern,
  bound values)``;
* a global answer table maps each call to the answer tuples found so far;
* when a call is already in progress (a cycle), the current table content is
  used instead of recursing;
* the whole computation is repeated until the tables stop changing, which
  makes the method terminating and complete on Datalog.

The work counters count every rule body instantiation, so the duplication
inherent in restarting the computation is visible to the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..datalog.database import Database
from ..datalog.errors import EvaluationError
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable
from ..datalog.unify import apply_to_literal, match_literal
from ..instrumentation import Counters
from .base import Engine, EngineResult, register

Call = Tuple[str, str, Tuple[object, ...]]       # predicate, adornment, bound values
AnswerTable = Dict[Call, Set[Tuple[object, ...]]]


@register
class TopDownEngine(Engine):
    """Memoised top-down (QSQR-style) evaluation."""

    name = "topdown"

    def applicable(self, program: Program, query: Literal) -> bool:
        # QSQR resolution as implemented here has no negation-as-failure
        # tabling; stratified programs go to the bottom-up model engines.
        return program.is_positive

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        if not program.is_positive:
            from ..datalog.errors import NotApplicableError

            raise NotApplicableError(
                "top-down evaluation handles positive programs only"
            )
        evaluator = _TopDown(program, database, counters)
        rows = evaluator.solve(query)
        from ..datalog.semantics import answer_against_relation

        answers = answer_against_relation(rows, query)
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=evaluator.restarts,
            details={"table_size": sum(len(v) for v in evaluator.table.values())},
        )


class _TopDown:
    def __init__(self, program: Program, database: Database, counters: Counters):
        self.program = program
        self.database = database
        self.counters = counters
        self.table: AnswerTable = {}
        self.in_progress: Set[Call] = set()
        self.restarts = 0

    # -- public entry -------------------------------------------------------

    def solve(self, query: Literal) -> Set[Tuple[object, ...]]:
        """All full tuples of the query predicate matching the query's constants."""
        call = self._call_of(query)
        # Iterate to fixpoint: QSQR restarts until the tables stabilise.
        while True:
            self.restarts += 1
            self.counters.iterations += 1
            before = {key: set(values) for key, values in self.table.items()}
            self.in_progress.clear()
            self._solve_call(call, query)
            if self.table == before:
                break
        return self.table.get(call, set())

    # -- internals ------------------------------------------------------------

    def _call_of(self, literal: Literal) -> Call:
        adornment = "".join(
            "b" if isinstance(term, Constant) else "f" for term in literal.args
        )
        bound_values = tuple(
            term.value for term in literal.args if isinstance(term, Constant)
        )
        return (literal.predicate, adornment, bound_values)

    def _solve_call(self, call: Call, literal: Literal) -> Set[Tuple[object, ...]]:
        """Fill the table entry for ``call``; returns the (possibly partial) answers."""
        self.table.setdefault(call, set())
        if call in self.in_progress:
            return self.table[call]
        self.in_progress.add(call)
        for rule in self.program.rules_for(literal.predicate):
            if not rule.body:
                row = rule.head.constant_values()
                if self._matches_call(row, literal):
                    self.table[call].add(row)
                continue
            head_substitution = self._bind_head(rule, literal)
            if head_substitution is None:
                continue
            self._solve_body(rule, list(rule.body), head_substitution, call)
        self.in_progress.discard(call)
        return self.table[call]

    def _bind_head(self, rule: Rule, literal: Literal):
        substitution: Dict[Variable, object] = {}
        for term, query_term in zip(rule.head.args, literal.args):
            if isinstance(query_term, Constant):
                if isinstance(term, Constant):
                    if term.value != query_term.value:
                        return None
                else:
                    existing = substitution.get(term)
                    if existing is not None and existing != query_term.value:
                        return None
                    substitution[term] = query_term.value
        return substitution

    def _matches_call(self, row: Tuple[object, ...], literal: Literal) -> bool:
        return match_literal(literal, row) is not None

    def _solve_body(
        self,
        rule: Rule,
        body: List[Literal],
        substitution: Dict[Variable, object],
        call: Call,
    ) -> None:
        if not body:
            head = apply_to_literal(rule.head, substitution)
            if head.is_ground:
                self.counters.rule_firings += 1
                self.table[call].add(head.constant_values())
            return
        literal, rest = body[0], body[1:]
        if literal.is_builtin:
            grounded = apply_to_literal(literal, substitution)
            if grounded.is_ground:
                if grounded.evaluate_builtin():
                    self._solve_body(rule, rest, substitution, call)
            else:
                # Defer the comparison until its variables are bound -- but
                # only if some remaining literal can still bind them.  When
                # everything left is a non-ground built-in, rotating the
                # queue makes no progress and would recurse forever.
                if all(
                    other.is_builtin
                    and not apply_to_literal(other, substitution).is_ground
                    for other in rest
                ):
                    raise EvaluationError(
                        f"built-in literal {literal} never becomes ground"
                    )
                self._solve_body(rule, rest + [literal], substitution, call)
            return
        bound_literal = apply_to_literal(literal, substitution)
        if literal.predicate in self.program.derived_predicates:
            subcall = self._call_of(bound_literal)
            rows = set(self._solve_call(subcall, bound_literal))
        else:
            rows = set(map(tuple, self.database.match(bound_literal)))
        for row in rows:
            extended = match_literal(literal, row, substitution)
            if extended is not None:
                self._solve_body(rule, rest, extended, call)
