"""The shared stratified fixpoint runtime: one stratum scheduler, two drivers.

Historically every bottom-up engine carried its own fixpoint loop (naive a
global Jacobi iteration, seminaive a per-SCC differential loop, magic the
seminaive loop over a rewritten program).  This module is the single home of
those loops, generalised to *stratified* programs -- negation and
aggregation included:

* :func:`evaluate_stratified` asks :class:`~repro.datalog.analysis
  .Stratification` for the ordered strata (raising
  :class:`~repro.datalog.errors.StratificationError` for programs with
  negation or aggregation through recursion) and evaluates them bottom-up.
  Within a stratum every dependency is positive -- negative arcs always
  cross stratum boundaries -- so each stratum is an ordinary monotone
  fixpoint over relations whose negated/aggregated inputs are already
  complete.
* Two **stratum drivers** reproduce the historical engines exactly:
  ``naive=True`` runs the Jacobi iteration over the stratum's rules in
  program order, ``naive=False`` runs the per-component seminaive
  differential loop on the compiled delta plans of
  :mod:`repro.datalog.plans`.  A *positive* program stratifies into exactly
  one stratum whose component order is ``analysis.evaluation_order()``, so
  both drivers are bit-identical -- answers *and* work counters -- to the
  pre-stratification engines; the 88 pinned paper-sample counters enforce
  this.
* Aggregate rules compile to :class:`~repro.datalog.plans.AggregateFold`
  operators and fire exactly once when their component is reached: their
  body predicates live in strictly lower strata, so the fold's inputs cannot
  change during the stratum's own fixpoint.
* :func:`resume_stratified` is the incremental path of the
  materialize/answer/resume contract, and it now accepts *signed* deltas
  (:class:`~repro.datalog.database.Delta`: inserts and deletes).  For
  positive programs insertions are the PR-3 seminaive continuation (a delta
  computation seeded with the EDB delta) and deletions run the
  **delete-rederive (DRed)** maintenance of Gupta-Mumick-Subrahmanian:

  1. *overdelete* -- every derived tuple with at least one derivation
     through a deleted tuple is collected to a fixpoint, driven from the
     delete-delta side by the same ``delta_first`` join plans the insertion
     resume uses;
  2. *remove* -- the deleted EDB rows and the overdeleted derived rows are
     physically removed (the storage kernel maintains its hash and
     adjacency indexes incrementally under removal);
  3. *rederive* -- each overdeleted tuple that still has a derivation from
     the surviving facts is reinserted (a head-bound join probe per rule),
     and the reinsertions are propagated with the ordinary delta-seeded
     seminaive rounds, resurrecting any overdeleted tuple they re-support.

  Stratified programs are non-monotone under *either* sign -- a new ``move``
  fact can retract a ``not win`` consequence, a deleted one can create it --
  so the resume restarts evaluation at the lowest stratum whose inputs the
  delta touches, reusing the cached models of every lower stratum via a
  copy-on-write overlay that simply drops the affected derived relations.

**Parallel evaluation.**  When :func:`repro.parallel.set_parallelism` (or the
``REPRO_PARALLELISM`` environment variable) selects more than one worker, the
seminaive driver arms two concurrency levels, both strictly behind the
switch -- the default of ``1`` runs the historical sequential code paths
byte for byte, which stay the differential oracle:

* **Level 1 -- independent SCCs.**  :func:`_seminaive_stratum` partitions a
  stratum's components into dependency *waves* (a component whose rule
  bodies mention an earlier component's predicates waits for it); the
  components of one wave evaluate concurrently in threads, each against its
  own copy-on-write :meth:`~repro.datalog.database.Database.overlay` with a
  private :class:`~repro.instrumentation.Counters` bundle but a *shared*
  touched set (``share_touched=True``), so the ``distinct_facts`` total is
  the growth of one union.  After the wave joins, overlays merge back in
  evaluation order (:meth:`~repro.datalog.database.Database.absorb_overlay`
  + :meth:`~repro.instrumentation.Counters.absorb`), reproducing the
  sequential journal, relations and counters exactly.
* **Level 2 -- sharded delta rounds.**  Inside a (main-thread) component
  fixpoint, a delta round whose plan is shard-eligible (see
  :class:`~repro.datalog.plans.ShardRecipe`) and whose delta relation holds
  at least :data:`_SHARD_MIN_ROWS` rows is partitioned by the interned code
  of the plan's leading join key and dispatched to a persistent
  fork-inherited :class:`~repro.parallel.WorkerPool`.  Workers are
  probe-only: each rebuilds its shard of the delta from shipped code
  columns, runs the ordinary :meth:`~repro.datalog.plans.JoinPlan
  .head_batch` against the inherited (frozen) main database, and reports
  coded head rows plus the distinct probe rows it touched.  The parent
  merges shards in worker order and replays the exact observable charges:
  ``fact_retrievals`` is the merged head-row count (each probed bucket row
  yields exactly one head row for eligible shapes) and ``distinct_facts``
  is the growth of the parent's touched set under the union of the
  workers' candidates.  Answers and aggregated counters are identical to
  sequential evaluation; within-round row *order* is deterministic (worker
  index, then delta order) but not sequential-identical, which only
  permutes set-insertion order downstream.

The Jacobi driver and the DRed/resume paths stay sequential: the naive
driver exists to reproduce the paper's duplicated-work measurements, and
the maintenance passes are delta-sized, not fixpoint-sized.
"""

from __future__ import annotations

import threading
import time
from array import array
from itertools import repeat as _repeat
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .. import parallel as _parallel
from ..datalog.analysis import ProgramAnalysis, Stratification, analyze
from ..datalog.database import Database, Delta, Relation, Row
from ..datalog import plans as _plans
from ..datalog.plans import aggregate_plan, delta_plan, delta_plans, rule_plan
from ..datalog.rules import Program, Rule
from ..instrumentation import Counters
from ..storage import runtime as _storage_runtime
from ..storage.interner import global_interner
from ..storage.runtime import MODE_KERNEL


#: Delta relations smaller than this evaluate sequentially even when
#: parallelism is armed: below it, the per-round dispatch overhead (pickling
#: the code columns, pipe round-trips, decoding results) exceeds the join
#: itself.  Tests lower it through :func:`set_shard_min_rows` to force the
#: sharded path onto small workloads.
_SHARD_MIN_ROWS = 4096


def set_shard_min_rows(rows: int) -> int:
    """Set the sharding threshold (rows per delta relation); returns the old.

    A test knob: production code should leave the default alone.
    """
    global _SHARD_MIN_ROWS
    if not isinstance(rows, int) or rows < 1:
        raise ValueError(f"shard threshold must be a positive integer, got {rows!r}")
    previous = _SHARD_MIN_ROWS
    _SHARD_MIN_ROWS = rows
    return previous


def _batch_heads(
    plan,
    database: Database,
    derived: Optional[Database] = None,
    frozen: bool = False,
) -> Optional[List[Row]]:
    """All head rows of one whole-batch plan execution, or ``None``.

    ``None`` -- because the columnar mode is off, the plan's shape is not
    batchable, or an optimistic batch was discarded -- sends the caller to
    the row-at-a-time ``plan.heads`` loop.  Every firing loop below satisfies
    :meth:`~repro.datalog.plans.JoinPlan.head_batch`'s consumption contract:
    between the call and the insertion of the returned rows, only the plan's
    head relation of ``database`` (and databases the plan does not read) is
    written.
    """
    if _plans._mode != _plans._MODE_COLUMNAR:
        return None
    return plan.head_batch(database, derived=derived, frozen=frozen)


# ---------------------------------------------------------------------------
# Forward evaluation
# ---------------------------------------------------------------------------

def evaluate_stratified(
    program: Program,
    database: Database,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
    naive: bool = False,
) -> int:
    """Evaluate every stratum of ``program`` bottom-up, in place.

    Returns the total number of outer-loop rounds (the sum of per-stratum
    Jacobi rounds under the naive driver; the seminaive driver reports its
    rounds through ``counters.iterations`` as it always has).

    Raises :class:`~repro.datalog.errors.StratificationError` when the
    program has no stratification.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)
    stratification = Stratification.of(program, analysis)
    total_rounds = 0
    for stratum in stratification.strata:
        rules = stratification.stratum_rules(stratum)
        if not rules:
            continue
        if naive:
            total_rounds += _jacobi_stratum(rules, database, counters)
        else:
            _seminaive_stratum(stratum, program, database, counters)
    return total_rounds


def _jacobi_stratum(rules: List[Rule], database: Database, counters: Counters) -> int:
    """The naive driver: refire every rule of the stratum until no new tuple.

    This is the historical naive loop verbatim (rules in program order, one
    plan per rule, full refiring every round -- the duplication the paper
    measures), preceded by the stratum's aggregate folds, which fire once.
    """
    scan_rules = [rule for rule in rules if not rule.is_aggregate]
    _fire_folds(rules, database, counters)
    plans = [
        (rule.head.predicate, rule_plan(rule, database=database))
        for rule in scan_rules
    ]
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        counters.iterations += 1
        changed = False
        for head_predicate, plan in plans:
            batch = _batch_heads(plan, database)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(head_predicate, batch)
                if new_rows:
                    counters.derived_tuples += len(new_rows)
                    changed = True
                continue
            for head_row in plan.heads(database):
                counters.rule_firings += 1
                if database.add_fact(head_predicate, head_row):
                    counters.derived_tuples += 1
                    changed = True
    return iterations


def _seminaive_stratum(
    stratum, program: Program, database: Database, counters: Counters
) -> None:
    """The seminaive driver: per-component differential fixpoints.

    Components are processed in the stratum's evaluation order (the reverse
    topological order of the SCCs, filtered to the stratum), exactly as the
    historical seminaive engine processed ``analysis.evaluation_order()``.
    With parallelism armed, components that do not depend on each other
    evaluate concurrently in dependency waves (see :func:`_evaluate_wave`);
    the merge order is still evaluation order, so relations, journal and
    counters are identical to the sequential pass.
    """
    derived_predicates = program.derived_predicates
    entries: List[Tuple[Set[str], List[Rule]]] = []
    for component in stratum.components:
        component_predicates = set(component) & derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        entries.append((component_predicates, rules))
    workers = _parallel.parallelism()
    if workers <= 1 or len(entries) <= 1:
        for component_predicates, rules in entries:
            evaluate_component(rules, component_predicates, database, counters)
        return None
    try:
        for wave in _dependency_waves(entries):
            for start in range(0, len(wave), workers):
                chunk = wave[start : start + workers]
                if len(chunk) == 1:
                    component_predicates, rules = entries[chunk[0]]
                    evaluate_component(
                        rules, component_predicates, database, counters
                    )
                else:
                    _evaluate_wave(
                        [entries[i] for i in chunk], database, counters
                    )
    finally:
        # Later sequential charging should not keep paying for the lock the
        # wave overlays installed on the shared touched set.
        database._charge_lock = None
    return None


def _dependency_waves(
    entries: List[Tuple[Set[str], List[Rule]]]
) -> List[List[int]]:
    """Partition a stratum's components into independently evaluable waves.

    ``entries`` is the stratum's (predicates, rules) list in evaluation
    order, so every dependency points at an *earlier* entry.  A component's
    wave is one past the deepest wave it reads from (longest-path layering),
    which puts two components in the same wave only when neither's rule
    bodies mention the other's predicates -- evaluating them concurrently
    then reads exactly the data sequential evaluation would have read.
    """
    owner: Dict[str, int] = {}
    for index, (predicates, _rules) in enumerate(entries):
        for predicate in predicates:
            owner[predicate] = index
    levels: List[int] = []
    for index, (_predicates, rules) in enumerate(entries):
        level = 0
        for rule in rules:
            for literal in rule.body:
                other = owner.get(literal.predicate)
                if other is not None and other < index:
                    level = max(level, levels[other] + 1)
        levels.append(level)
    waves: Dict[int, List[int]] = {}
    for index, level in enumerate(levels):
        waves.setdefault(level, []).append(index)
    return [waves[level] for level in sorted(waves)]


def _evaluate_wave(
    components: List[Tuple[Set[str], List[Rule]]],
    database: Database,
    counters: Counters,
) -> None:
    """Evaluate independent components concurrently and merge deterministically.

    Each component gets a copy-on-write overlay with a private counter
    bundle and the *shared* touched set (``share_touched=True`` -- the
    distinct-fact total is the growth of one union, charged under one lock).
    Worker threads may finish in any order; the merge runs on the calling
    thread in evaluation order, so journals, relation replacement and
    counter totals land exactly as sequential evaluation would have landed
    them.  Sharding is disabled inside the threads: forking is only safe
    from a quiescent main thread.
    """
    overlays = [
        Database.overlay(database, counters=Counters(), share_touched=True)
        for _ in components
    ]
    errors: List[BaseException] = []

    def run(entry: Tuple[Set[str], List[Rule]], overlay: Database) -> None:
        predicates, rules = entry
        try:
            evaluate_component(
                rules, predicates, overlay, overlay.counters, allow_sharding=False
            )
        except BaseException as exc:  # re-raised on the caller's thread
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(entry, overlay), daemon=True)
        for entry, overlay in zip(components, overlays)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    for overlay in overlays:
        counters.absorb(overlay.counters)
        database.absorb_overlay(overlay)


def _fire_folds(
    rules: Iterable[Rule],
    database: Database,
    counters: Counters,
    delta: Optional[Database] = None,
) -> None:
    """Fire the aggregate folds among ``rules`` once over the current state."""
    for rule in rules:
        if not rule.is_aggregate:
            continue
        head_predicate = rule.head.predicate
        for head_row in aggregate_plan(rule).heads(database):
            counters.rule_firings += 1
            if database.add_fact(head_predicate, head_row):
                counters.derived_tuples += 1
                if delta is not None:
                    delta.add_fact(head_predicate, head_row)


def evaluate_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    counters: Counters,
    allow_sharding: bool = True,
) -> None:
    """Seminaive iteration for one group of mutually recursive predicates.

    Both the round-0 full evaluation and the delta-restricted rounds run on
    compiled join plans (:mod:`repro.datalog.plans`); the delta rounds use
    one cached plan variant per recursive body occurrence, whose chosen
    occurrence reads the delta relation while every other literal reads the
    full database (including earlier deltas already merged into it).  Plan
    compilation rejects built-ins that can never become ground and negated
    literals the positive body never binds, so the deferral semantics cannot
    diverge from :func:`~repro.datalog.unify.satisfy_body` -- they are the
    same code path.  Aggregate rules fold once in round 0 (their inputs live
    in strictly lower strata and cannot change here); negated literals never
    read the delta (stratification puts them below this component).

    With parallelism armed (and ``allow_sharding`` true -- the parallel SCC
    scheduler passes false inside worker threads, where forking is unsafe),
    delta rounds of shard-eligible plans over large deltas run on the fork
    worker pool; see :class:`_ShardContext`.
    """
    scan_rules = [rule for rule in rules if not rule.is_aggregate]
    recursive_key = frozenset(recursive_predicates)
    # Round 0: fire every rule once over the current database.
    delta = Database()
    _fire_folds(rules, database, counters, delta)
    round0 = [(rule, rule_plan(rule, database=database)) for rule in scan_rules]
    for rule, plan in round0:
        head_predicate = rule.head.predicate
        batch = _batch_heads(plan, database)
        if batch is not None:
            counters.rule_firings += len(batch)
            new_rows = database.add_rows(head_predicate, batch)
            if new_rows:
                counters.derived_tuples += len(new_rows)
                delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
            continue
        for head_row in plan.heads(database):
            counters.rule_firings += 1
            if database.add_fact(head_predicate, head_row):
                counters.derived_tuples += 1
                delta.add_fact(head_predicate, head_row)
    counters.iterations += 1

    # One plan variant per occurrence of a recursive predicate, with that
    # occurrence restricted to the delta.  Non-recursive rules have no
    # variants and cannot produce anything new after round 0.
    variants = [
        (rule, delta_plans(rule, recursive_key, database=database))
        for rule in scan_rules
    ]
    shard: Optional[_ShardContext] = None
    if (
        allow_sharding
        and _parallel.parallelism() > 1
        and _plans._mode == _plans._MODE_COLUMNAR
        and _storage_runtime._mode == MODE_KERNEL
        and _parallel.fork_available()
    ):
        shard = _ShardContext(database, recursive_key, variants)
        if not shard.plans:
            shard = None
    # Mid-fixpoint adaptive re-planning (cost mode, unsharded rounds only:
    # the shard executor's charge replay is tied to the plan objects it was
    # built with).  ``assumed`` records the cardinality each recursive
    # predicate was costed with when the current variants were compiled.
    adaptive = shard is None and _plans._plan_mode == _plans._PLAN_COST
    assumed: Dict[str, float] = {}
    if adaptive:
        for predicate in recursive_key:
            relation = database.relations.get(predicate)
            assumed[predicate] = (
                float(len(relation.table)) if relation is not None else 1.0
            )
    try:
        if shard is not None and shard.run_fixpoint(delta, counters):
            delta = Database()  # the offloaded fixpoint ran to completion
        while delta.total_facts():
            if adaptive:
                replanned = _adapt_delta_variants(
                    scan_rules, recursive_key, database, delta, assumed
                )
                if replanned is not None:
                    variants = replanned
            new_delta = Database()
            for rule, plans in variants:
                head_predicate = rule.head.predicate
                for plan in plans:
                    batch = None
                    if shard is not None:
                        batch = shard.execute(plan, delta)
                    if batch is None:
                        batch = _batch_heads(plan, database, derived=delta)
                    if batch is not None:
                        counters.rule_firings += len(batch)
                        new_rows = database.add_rows(head_predicate, batch)
                        if new_rows:
                            counters.derived_tuples += len(new_rows)
                            new_delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                        continue
                    for head_row in plan.heads(database, derived=delta):
                        counters.rule_firings += 1
                        if database.add_fact(head_predicate, head_row):
                            counters.derived_tuples += 1
                            new_delta.add_fact(head_predicate, head_row)
            counters.iterations += 1
            delta = new_delta
    finally:
        if shard is not None:
            shard.close()


#: Adaptive re-planning threshold: a delta round's observed cardinality
#: must diverge from the costed assumption by this factor (in either
#: direction) before the cached cost-based delta variants are re-costed.
_REPLAN_RATIO = 8.0


def _adapt_delta_variants(
    scan_rules: List[Rule],
    recursive_key: FrozenSet[str],
    database: Database,
    delta: Database,
    assumed: Dict[str, float],
) -> Optional[List[Tuple[Rule, List[object]]]]:
    """Swap in re-costed delta variants when the delta defies its estimate.

    Compares each recursive predicate's observed per-round delta size with
    the cardinality the current plans were costed under (``assumed``); when
    any diverges by :data:`_REPLAN_RATIO` or more, rebuilds every variant
    through :func:`~repro.datalog.plans.delta_plans` with the observed
    sizes as overrides (the builders' fingerprinted cache makes repeated
    same-magnitude re-plans cache hits), records a ``DL601`` planner event,
    and returns the replacement variants.  Returns ``None`` -- change
    nothing -- while estimates hold.
    """
    observed: Dict[str, float] = {}
    diverged: List[Tuple[str, float, float]] = []
    for predicate in sorted(recursive_key):
        relation = delta.relations.get(predicate)
        rows = float(len(relation.table)) if relation is not None else 0.0
        rows = max(rows, 1.0)
        observed[predicate] = rows
        previous = max(assumed.get(predicate, 1.0), 1.0)
        ratio = max(previous, rows) / min(previous, rows)
        if ratio >= _REPLAN_RATIO:
            diverged.append((predicate, previous, rows))
    if not diverged:
        return None
    assumed.update(observed)
    overrides = {predicate: int(rows) for predicate, rows in observed.items()}
    variants = [
        (
            rule,
            delta_plans(
                rule, recursive_key, database=database, overrides=overrides
            ),
        )
        for rule in scan_rules
    ]
    from ..datalog.diagnostics import CODES, Diagnostic

    predicate, previous, rows = diverged[0]
    _plans.record_planner_event(
        Diagnostic(
            code="DL601",
            severity=CODES["DL601"][0],
            message=(
                f"delta cardinality for '{predicate}' was costed at "
                f"~{previous:.0f} rows but a round observed {rows:.0f}; "
                "delta plan variants re-costed"
            ),
        )
    )
    return variants


# ---------------------------------------------------------------------------
# Level 2: sharded delta rounds on a fork worker pool
# ---------------------------------------------------------------------------

class _ShardContext:
    """Per-component orchestration of sharded delta rounds.

    Created by :func:`evaluate_component` when parallelism is armed; scoped
    to one component fixpoint so the invariants are simple: the relations a
    shard-eligible plan probes (:class:`~repro.datalog.plans.ShardRecipe`
    requires them outside the component) are never written while the
    context is alive, so a forked worker's inherited copy stays valid for
    the whole fixpoint.  The pool forks lazily, on the first round whose
    delta reaches :data:`_SHARD_MIN_ROWS`, and re-forks if the interner has
    grown past a shipped code (a new head *constant* -- derived values
    otherwise reuse codes allocated before the fork) or a probed relation
    changed identity (defensive; cannot happen within one component).

    Counter parity is replayed, not approximated: for eligible shapes the
    step-0 delta scan is uncharged (the delta is runtime scratch with its
    own counters) and every probed bucket row of the keyed step yields
    exactly one head row, so the parent charges ``fact_retrievals`` and
    ``rule_firings`` by the workers' *produced* row counts (pre-pruning;
    see :func:`_shard_worker`) and ``distinct_facts`` by the growth of its
    touched set under the workers' reported probe rows.  Bucket charging
    memos are deliberately *not* replayed -- they are total-preserving
    optimizations, so a later sequential round re-walking a bucket charges
    identically.
    """

    def __init__(
        self,
        database: Database,
        recursive_predicates: FrozenSet[str],
        variants,
    ) -> None:
        self.database = database
        self.workers = _parallel.parallelism()
        self.interner = global_interner()
        #: Shard-eligible plans, in variant order; workers address them by
        #: index through the fork-inherited pool state.
        self.plans: List[object] = []
        self._recipes: Dict[int, Tuple[int, object]] = {}
        total_plans = 0
        for _rule, plans in variants:
            for plan in plans:
                total_plans += 1
                recipe = plan.shard_recipe()
                if recipe is None or recipe.probe_predicate in recursive_predicates:
                    continue
                self._recipes[id(plan)] = (len(self.plans), recipe)
                self.plans.append(plan)
        # Whole-fixpoint offload needs the round loop fully covered by one
        # shard-eligible plan carrying an invariant column: then partitions
        # never exchange rows and each worker can run its delta rounds to
        # completion without per-round synchronisation.
        self.fixpoint_recipe = None
        if total_plans == 1 and len(self.plans) == 1:
            only = self.plans[0].shard_recipe()
            if only is not None and only.invariant_position is not None:
                self.fixpoint_recipe = only
        self.pool: Optional[_parallel.WorkerPool] = None
        self._failed = False
        self._fork_len = 0
        self._frozen: Dict[str, Tuple[Optional[Relation], int]] = {}

    # -- pool lifecycle ----------------------------------------------------

    def _fork(self) -> None:
        self.close()
        if self._failed:
            return
        self._fork_len = len(self.interner)
        self._frozen = {}
        for _index, recipe in self._recipes.values():
            relation = self.database.relations.get(recipe.probe_predicate)
            self._frozen[recipe.probe_predicate] = (
                relation,
                relation.table.mutations if relation is not None else -1,
            )
        try:
            self.pool = _parallel.WorkerPool(
                self.workers, state=(self.database, self.plans)
            )
        except _parallel.WorkerError:
            self._failed = True
            self.pool = None

    def _fresh(self, recipe) -> bool:
        relation = self.database.relations.get(recipe.probe_predicate)
        current = (
            relation,
            relation.table.mutations if relation is not None else -1,
        )
        return self._frozen.get(recipe.probe_predicate) == current

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    # -- dispatch ----------------------------------------------------------

    def execute(self, plan, delta: Database) -> Optional[List[Row]]:
        """Run one delta round of ``plan`` on the pool; merged heads or None.

        ``None`` sends the caller to the ordinary sequential batch path:
        the plan is not shard-eligible, the delta is below the threshold,
        or the pool is unavailable (fork failed, or a worker died -- in
        which case no charge has been applied and the sequential re-run is
        exact).
        """
        entry = self._recipes.get(id(plan))
        if entry is None:
            return None
        index, recipe = entry
        delta_relation = delta.relations.get(recipe.delta_predicate)
        if delta_relation is None:
            return None
        table = delta_relation.table
        if len(table) < _SHARD_MIN_ROWS:
            return None
        if self.pool is None or not self.pool.alive:
            self._fork()
        if self.pool is None:
            return None
        arrays = table.column_arrays()
        stale = len(self.interner) != self._fork_len and any(
            len(column) and max(column) >= self._fork_len for column in arrays
        )
        if stale or not self._fresh(recipe):
            self._fork()
            if self.pool is None:
                return None
        # One payload, sent to every worker: each filters its own shard by
        # ``lead_code % workers``, so the parent never partitions rows.
        col_bytes = [column.tobytes() for column in arrays]
        tasks = [
            ("shard_join", (index, self.workers, windex, col_bytes))
            for windex in range(self.workers)
        ]
        try:
            results = self.pool.run(tasks)
        except _parallel.WorkerError:
            self._failed = True
            self.close()
            return None
        return self._merge(plan, recipe, results)

    def _merge(self, plan, recipe, results) -> List[Row]:
        """Decode shard results in worker order and replay the charges."""
        started = time.perf_counter()
        database = self.database
        counters = database.counters
        value_of = self.interner._value_of
        head_arity = len(plan.head_template)
        probe_relation = database.relations.get(recipe.probe_predicate)
        rows_map = probe_relation.table.rows_map if probe_relation is not None else {}
        probe_arity = probe_relation.arity if probe_relation is not None else 0
        predicate = recipe.probe_predicate
        touched = database._touched
        before = len(touched)
        batch_stats = counters.batch
        heads: List[Row] = []
        produced_total = 0
        for produced, count, flat, fallback, touched_blob, stats in results:
            produced_total += produced
            if count:
                codes = array("q")
                codes.frombytes(flat)
                if head_arity:
                    values = [value_of[code] for code in codes]
                    grouped = list(zip(*(iter(values),) * head_arity))
                else:
                    grouped = [()] * (count - len(fallback))
                if fallback:
                    # Re-interleave the value-shipped rows (head constants
                    # the child's interner copy has never seen) at their
                    # original indices, preserving the child's row order.
                    merged: List[Row] = []
                    grouped_index = 0
                    fallback_index = 0
                    for i in range(count):
                        if (
                            fallback_index < len(fallback)
                            and fallback[fallback_index][0] == i
                        ):
                            merged.append(fallback[fallback_index][1])
                            fallback_index += 1
                        else:
                            merged.append(grouped[grouped_index])
                            grouped_index += 1
                    heads.extend(merged)
                else:
                    heads.extend(grouped)
            if touched_blob and probe_arity:
                tcodes = array("q")
                tcodes.frombytes(touched_blob)
                chunks = iter(tcodes)
                for introw in zip(*(chunks,) * probe_arity):
                    row = rows_map.get(introw)
                    if row is None:
                        row = tuple(value_of[code] for code in introw)
                    touched.add((predicate, row))
            batches, rows_in, rows_out, fallbacks, nodes = stats
            batch_stats.batches += batches
            batch_stats.rows_in += rows_in
            batch_stats.rows_out += rows_out
            batch_stats.fallbacks += fallbacks
            for key, node_batches, node_in, node_out in nodes:
                cell = batch_stats.node(key)
                cell[0] += node_batches
                cell[1] += node_in
                cell[2] += node_out
        counters.fact_retrievals += produced_total
        # The caller fires the rule once per *returned* row; the workers
        # pruned already-present duplicates, so account for those here --
        # the sequential run fires once per produced row.
        counters.rule_firings += produced_total - len(heads)
        counters.distinct_facts += len(touched) - before
        batch_stats.shards += len(results)
        batch_stats.merge_seconds += time.perf_counter() - started
        return heads

    # -- whole-fixpoint offload --------------------------------------------

    def run_fixpoint(self, delta: Database, counters: Counters) -> bool:
        """Run the component's entire delta-round loop on the pool.

        Eligible when the loop consists of exactly one shard-eligible plan
        whose recipe carries an invariant column (see
        :class:`~repro.datalog.plans.ShardRecipe`): the initial delta is
        partitioned by the invariant column's code, each worker iterates
        its partition to a local fixpoint (partitions are closed under the
        rule, so local completion is global completion), and the parent
        inserts the union of novel rows once.  ``True`` means the fixpoint
        is complete and the caller must skip the round loop; ``False``
        falls back to per-round evaluation with nothing charged.

        Counter parity: ``fact_retrievals`` and ``rule_firings`` are the
        summed produced-row counts (exact for the eligible shape, round by
        round); ``derived_tuples`` is the insert count of the disjoint
        novel unions; ``distinct_facts`` is parent touched-set growth; and
        ``iterations`` is the *maximum* worker round count -- the
        sequential loop runs until every partition's frontier is empty, so
        its round count is exactly the deepest partition's.
        """
        recipe = self.fixpoint_recipe
        if recipe is None:
            return False
        if any(
            predicate != recipe.delta_predicate and len(relation.table)
            for predicate, relation in delta.relations.items()
        ):
            # Foreign rows in the seed delta would keep the sequential loop
            # spinning on rounds our workers never see; stay sequential.
            return False
        delta_relation = delta.relations.get(recipe.delta_predicate)
        if delta_relation is None:
            return False
        table = delta_relation.table
        if len(table) < _SHARD_MIN_ROWS:
            return False
        self._fork()
        if self.pool is None:
            return False
        col_bytes = [column.tobytes() for column in table.column_arrays()]
        tasks = [
            ("shard_fixpoint", (0, self.workers, windex, col_bytes))
            for windex in range(self.workers)
        ]
        try:
            results = self.pool.run(tasks)
        except _parallel.WorkerError:
            self._failed = True
            self.close()
            return False
        self._merge_fixpoint(recipe, results, counters)
        return True

    def _merge_fixpoint(self, recipe, results, counters: Counters) -> None:
        started = time.perf_counter()
        database = self.database
        plan = self.plans[0]
        value_of = self.interner._value_of
        head_predicate = plan.head.predicate
        head_arity = len(plan.head_template)
        probe_relation = database.relations.get(recipe.probe_predicate)
        rows_map = probe_relation.table.rows_map if probe_relation is not None else {}
        probe_arity = probe_relation.arity if probe_relation is not None else 0
        touched = database._touched
        before = len(touched)
        batch_stats = database.counters.batch
        # The workers' dedup is exact and their shards disjoint, so every
        # shipped row is novel: on an unshared head table the insert is a
        # straight dict update over C-level zips -- the single largest
        # serial cost of the offload (``IntTable.merge_novel_coded``).
        # Column caches extend with strided slices, subset indexes defer
        # through the lag replay exactly as ``add_many`` does; only sharing
        # or an adjacency cache sends the rows through the checked path.
        head_relation = database.relations.get(head_predicate)
        table = head_relation.table if head_relation is not None else None
        bulk = (
            table is not None
            and head_predicate not in database._shared
            and table.can_bulk_merge
        )
        slow_rows: List[Row] = []
        derived = 0
        produced_total = 0
        rounds_max = 0
        for produced, rounds, flat, value_rows, touched_blob, stats in results:
            produced_total += produced
            rounds_max = max(rounds_max, rounds)
            codes = array("q")
            codes.frombytes(flat)
            if codes and head_arity:
                introws = list(zip(*(iter(codes),) * head_arity))
                values = map(value_of.__getitem__, codes)
                rows = list(zip(*(values,) * head_arity))
                if bulk:
                    table.merge_novel_coded(introws, rows, codes, head_arity)
                    database._journal.extend(
                        zip(_repeat(head_predicate), rows, _repeat(True))
                    )
                    derived += len(rows)
                else:
                    slow_rows.extend(rows)
            slow_rows.extend(value_rows)
            if touched_blob and probe_arity:
                tcodes = array("q")
                tcodes.frombytes(touched_blob)
                chunks = iter(tcodes)
                for introw in zip(*(chunks,) * probe_arity):
                    row = rows_map.get(introw)
                    if row is None:
                        row = tuple(value_of[code] for code in introw)
                    touched.add((recipe.probe_predicate, row))
            batches, rows_in, rows_out, fallbacks, nodes = stats
            batch_stats.batches += batches
            batch_stats.rows_in += rows_in
            batch_stats.rows_out += rows_out
            batch_stats.fallbacks += fallbacks
            for key, node_batches, node_in, node_out in nodes:
                cell = batch_stats.node(key)
                cell[0] += node_batches
                cell[1] += node_in
                cell[2] += node_out
        if derived and database._charged:
            database._charged.pop(head_predicate, None)
        derived += len(database.add_rows(head_predicate, slow_rows))
        counters.rule_firings += produced_total
        counters.derived_tuples += derived
        counters.iterations += rounds_max
        database.counters.fact_retrievals += produced_total
        database.counters.distinct_facts += len(touched) - before
        batch_stats.shards += len(results)
        batch_stats.merge_seconds += time.perf_counter() - started


#: Child-process-only memory of the head rows known to exist, per plan
#: index: the fork snapshot's head table plus every delta row and every
#: novel head seen since.  The parent's copy stays empty (only forked
#: workers execute shard tasks), so a re-fork starts children clean
#: against the then-fresh snapshot.
_SHARD_SEEN: Dict[int, Set[Tuple[int, ...]]] = {}


def _shard_worker(payload):
    """The forked worker's half of one shard task (see :class:`_ShardContext`).

    Runs in a child process whose memory is a copy-on-write snapshot of the
    parent at pool-fork time: the database object, compiled plans and the
    interner arrive by inheritance, the task payload carries only the plan
    index, the shard arithmetic and the delta's packed code columns.  The
    child swaps the database's observables (counters, touched set, charging
    memos) for fresh ones per task -- everything it mutates is private to
    its copy -- evaluates its shard through the ordinary batch executor,
    and ships back coded head rows, the distinct probe rows it touched and
    its batch telemetry.

    Head rows that provably already exist in the parent's head relation are
    pruned before shipping: the fork-inherited table, every delta row seen
    since (for a self-recursive rule the round-``r`` delta *is* what the
    parent inserted in round ``r-1``), and this worker's own earlier
    shipments are all guaranteed to be present, and the parent's
    ``add_rows`` would discard them anyway.  Pruning moves the dominant
    dedup cost of dense fixpoints into the pool; the pre-prune ``produced``
    count still travels back, because the charging contract (one
    ``fact_retrieval`` and one ``rule_firing`` per probed bucket row) is
    defined over produced rows, not novel ones.
    """
    index, workers, windex, col_bytes = payload
    database, plans = _parallel.pool_state()
    plan = plans[index]
    recipe = plan.shard_recipe()
    columns: List[array] = []
    for blob in col_bytes:
        column = array("q")
        column.frombytes(blob)
        columns.append(column)
    head_predicate = plan.head.predicate
    seen = _SHARD_SEEN.setdefault(index, set())
    if recipe.delta_predicate == head_predicate:
        # Every worker receives the full (unsharded) delta, so this stays
        # exactly the set of head rows inserted since the fork, no matter
        # which worker derived them.
        seen.update(zip(*columns))
    head_relation = database.relations.get(head_predicate)
    known = head_relation.table.rows_map if head_relation is not None else {}
    lead = columns[recipe.lead_position]
    keep = [i for i in range(len(lead)) if lead[i] % workers == windex]
    arity = len(columns)
    shard = Database()
    relation = Relation(recipe.delta_predicate, arity)
    if keep:
        if arity == 2:
            first, second = columns
            relation.table.add_coded_rows([(first[i], second[i]) for i in keep])
        else:
            relation.table.add_coded_rows(
                [tuple(column[i] for column in columns) for i in keep]
            )
    shard.relations[recipe.delta_predicate] = relation
    counters = Counters()
    database.counters = counters
    database._touched = set()
    database._charged = {}
    database._probe_cache.clear()
    database._charge_lock = None
    heads = plan.head_batch(database, derived=shard, frozen=True)
    if heads is None:  # pragma: no cover - SAFE shapes cannot fall back
        raise RuntimeError("shard-eligible plan fell back to the row loop")
    row_code_of = relation.table.interner.row_code_of
    flat = array("q")
    fallback: List[Tuple[int, Row]] = []
    novel = 0
    for row in heads:
        introw = row_code_of(row)
        if introw is None:
            # A head constant this child's interner copy has never coded is
            # novel by construction; ship it by value.
            fallback.append((novel, row))
            novel += 1
        elif introw in known or introw in seen:
            continue
        else:
            seen.add(introw)
            flat.extend(introw)
            novel += 1
    touched = array("q")
    for _predicate, row in database._touched:
        touched.extend(row_code_of(row))
    batch = counters.batch
    nodes = [
        (key, cell[0], cell[1], cell[2]) for key, cell in batch.nodes.items()
    ]
    return (
        len(heads),
        novel,
        flat.tobytes(),
        fallback,
        touched.tobytes(),
        (batch.batches, batch.rows_in, batch.rows_out, batch.fallbacks, nodes),
    )


_parallel.register_task("shard_join", _shard_worker)


def _shard_fixpoint_worker(payload):
    """Iterate one invariant-column partition to its local fixpoint.

    The forked child receives the component's *seed* delta (the round-0
    insertions, already present in the fork-inherited head table), keeps
    the rows whose invariant-column code hashes to its shard, and runs the
    ordinary delta-round loop over them entirely locally: because the
    invariant column passes unchanged from the recursive body literal to
    the head, every row derivable from this shard stays in this shard, so
    no inter-worker exchange or per-round synchronisation is needed --
    the expensive part of :func:`_shard_worker`'s protocol.

    Duplicate pruning is exact, which the termination argument requires:
    the fork-inherited head table covers everything the parent knew, and
    the local ``seen`` set covers everything this partition derived since.
    Head rows containing a value the inherited interner never coded are
    interned *locally* so ``seen`` membership stays coded; such rows (any
    code at or above the fork-time interner length) are shipped by value,
    since child-local codes mean nothing to the parent.

    Returns pre-pruning ``produced`` (the charging contract counts probed
    bucket rows, and for eligible shapes each yields one head row) and the
    local round count; the parent takes the max of the latter -- the
    sequential loop iterates until the *deepest* partition's frontier
    empties.
    """
    index, workers, windex, col_bytes = payload
    database, plans = _parallel.pool_state()
    plan = plans[index]
    recipe = plan.shard_recipe()
    interner = global_interner()
    base_len = len(interner)
    columns: List[array] = []
    for blob in col_bytes:
        column = array("q")
        column.frombytes(blob)
        columns.append(column)
    arity = len(columns)
    head_predicate = plan.head.predicate
    head_relation = database.relations.get(head_predicate)
    known = head_relation.table.rows_map if head_relation is not None else {}
    invariant = columns[recipe.invariant_position]
    keep = [i for i in range(len(invariant)) if invariant[i] % workers == windex]
    current = [tuple(column[i] for column in columns) for i in keep]
    rflat = array("q")
    for introw in current:
        rflat.extend(introw)
    counters = Counters()
    database.counters = counters
    database._touched = set()
    database._charged = {}
    database._probe_cache.clear()
    database._charge_lock = None
    code_item = interner._code_of.__getitem__
    code_get = interner._code_of.get
    introw_of = interner._introw_of
    memo_get = introw_of.get
    intern_row = interner.intern_row
    # When every head constant is already coded below the fork length, no
    # derivable row can contain a child-local code (column values all come
    # from pre-fork rows), so the per-row code-range check is dead weight.
    flat_safe = True
    for slot, value in plan.head_template:
        if slot is None:
            code = code_get(value)
            if code is None or code >= base_len:
                flat_safe = False
    seen: Set[Tuple[int, ...]] = set()
    flat = array("q")
    value_rows: List[Row] = []
    produced = 0
    rounds = 0
    while current:
        rounds += 1
        shard = Database()
        relation = Relation(recipe.delta_predicate, arity)
        # Seed the scratch table columnarly: the step-0 scan only reads the
        # code columns, the interner and the row-map *keys*, so the value
        # tuples ``add_coded_rows`` would decode are never looked at.
        relation.table.seed_coded_rows(
            current, [rflat[position::arity] for position in range(arity)]
        )
        shard.relations[recipe.delta_predicate] = relation
        heads = plan.head_batch(database, derived=shard, frozen=True)
        if heads is None:  # pragma: no cover - SAFE shapes cannot fall back
            raise RuntimeError("shard-eligible plan fell back to the row loop")
        produced += len(heads)
        current = []
        rflat = array("q")
        if flat_safe:
            for row, introw in zip(heads, map(memo_get, heads)):
                if introw is None:
                    introw = tuple(map(code_item, row))
                    introw_of[row] = introw
                if introw in seen or introw in known:
                    continue
                seen.add(introw)
                current.append(introw)
                rflat.extend(introw)
            flat.extend(rflat)
        else:
            for row, introw in zip(heads, map(memo_get, heads)):
                if introw is None:
                    try:
                        introw = tuple(map(code_item, row))
                    except KeyError:
                        introw = intern_row(row)
                    introw_of[row] = introw
                if introw in seen or introw in known:
                    continue
                seen.add(introw)
                current.append(introw)
                rflat.extend(introw)
                if max(introw, default=0) < base_len:
                    flat.extend(introw)
                else:
                    value_rows.append(row)
    touched = array("q")
    for _predicate, row in database._touched:
        touched.extend(map(code_item, row))
    batch = counters.batch
    nodes = [
        (key, cell[0], cell[1], cell[2]) for key, cell in batch.nodes.items()
    ]
    return (
        produced,
        rounds,
        flat.tobytes(),
        value_rows,
        touched.tobytes(),
        (batch.batches, batch.rows_in, batch.rows_out, batch.fallbacks, nodes),
    )


_parallel.register_task("shard_fixpoint", _shard_fixpoint_worker)


# ---------------------------------------------------------------------------
# Incremental continuation (the resume path of the engine contract)
# ---------------------------------------------------------------------------

def resume_stratified(
    program: Program,
    database: Database,
    edb_delta,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> Tuple[Database, int]:
    """Bring a materialized model up to date after an EDB delta.

    ``database`` must hold a complete model of ``program`` over its previous
    extensional state; ``edb_delta`` is either a plain ``{predicate: rows}``
    mapping of newly inserted rows (the pre-deletion contract) or a signed
    :class:`~repro.datalog.database.Delta` carrying inserts *and* deletes.
    Returns ``(database, newly_derived_count)`` where the database is the
    *same instance* for positive programs (deletions maintained in place by
    delete-rederive, insertions by the seminaive continuation -- deletions
    first, so the insertion rounds run over the already-repaired model) and
    a fresh copy-on-write replacement for stratified programs (evaluation
    restarted at the lowest stratum whose inputs the delta touches; see the
    module docstring).  Rows on derived predicates are rejected with
    :class:`ValueError`.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)
    derived_predicates = program.derived_predicates

    delta = Delta.coerce(edb_delta)
    for predicate in delta.predicates():
        if predicate in derived_predicates:
            raise ValueError(
                f"cannot resume with facts for derived predicate {predicate!r}"
            )

    if not program.is_positive:
        return _resume_non_monotone(program, analysis, database, delta, counters)

    new_tuples = 0
    if delta.has_deletes:
        # The delete rows are treated as deleted even when already invisible
        # in ``database`` -- mirroring the insertion convention below, a
        # copy-on-write materialization can see a deletion made to the
        # database it was built over before its consequences have been
        # retracted, and overdeleting from a long-gone row only schedules
        # still-valid tuples for rederivation.
        removed = Database()
        for predicate, rows in delta.deletes.items():
            for row in rows:
                removed.add_fact(predicate, row)
        if removed.total_facts():
            _dred_delete(program, analysis, database, removed, counters)

    # The cross-component changed set: the EDB insert delta plus, as
    # evaluation proceeds, every derived tuple added by an earlier
    # component.  The delta rows are treated as changed even when they are
    # already visible in ``database`` -- a copy-on-write materialization can
    # see an insertion made to the database it was built over before its
    # consequences have been derived, and firing a genuinely old row again
    # only rediscovers existing facts.
    changed = Database()
    for predicate, rows in delta.inserts.items():
        for row in rows:
            database.add_fact(predicate, row)
            changed.add_fact(predicate, row)
    if changed.total_facts():
        new_tuples = _resume_positive(program, analysis, database, changed, counters)
    return database, new_tuples


def _resume_positive(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    changed: Database,
    counters: Counters,
) -> int:
    """The monotone continuation: seminaive rounds seeded with the delta."""
    derived_predicates = program.derived_predicates
    new_tuples = 0
    for component in analysis.evaluation_order():
        component_predicates = set(component) & derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        new_tuples += _resume_component(
            rules, component_predicates, database, changed, counters
        )
    return new_tuples


def _resume_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    changed: Database,
    counters: Counters,
) -> int:
    """Delta-seeded seminaive iteration for one mutually recursive group.

    ``changed`` holds every row that is new since the materialized fixpoint
    (EDB delta plus earlier components' derivations); new rows produced here
    are merged back into it so later components see them as deltas too.
    """
    changed_predicates = frozenset(
        predicate for predicate in changed.predicates() if changed.count(predicate)
    )
    new_tuples = 0

    # Incremental round 0: one plan variant per occurrence of an
    # already-changed predicate, that occurrence restricted to the changed
    # rows, every other literal reading the full updated database.  A rule
    # mentioning no changed predicate has no variants and never fires, and
    # the delta occurrence drives the join (``delta_first``), so the round's
    # work is proportional to the delta, not to the full relations.
    delta = Database()
    fired = False
    for rule in rules:
        head_predicate = rule.head.predicate
        for plan in delta_plans(
            rule, changed_predicates, delta_first=True, database=database
        ):
            fired = True
            batch = _batch_heads(plan, database, derived=changed)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(head_predicate, batch)
                if new_rows:
                    counters.derived_tuples += len(new_rows)
                    new_tuples += len(new_rows)
                    delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                continue
            for head_row in plan.heads(database, derived=changed):
                counters.rule_firings += 1
                if database.add_fact(head_predicate, head_row):
                    counters.derived_tuples += 1
                    new_tuples += 1
                    delta.add_fact(head_predicate, head_row)
    if not fired:
        return 0
    counters.iterations += 1

    # Ordinary recursive delta rounds, delta-driven like round 0.
    recursive_key = frozenset(recursive_predicates)
    variants = [
        (rule, delta_plans(rule, recursive_key, delta_first=True, database=database))
        for rule in rules
    ]
    while delta.total_facts():
        for predicate in delta.predicates():
            changed.add_facts(predicate, delta.rows(predicate))
        new_delta = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                batch = _batch_heads(plan, database, derived=delta)
                if batch is not None:
                    counters.rule_firings += len(batch)
                    new_rows = database.add_rows(head_predicate, batch)
                    if new_rows:
                        counters.derived_tuples += len(new_rows)
                        new_tuples += len(new_rows)
                        new_delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                    continue
                for head_row in plan.heads(database, derived=delta):
                    counters.rule_firings += 1
                    if database.add_fact(head_predicate, head_row):
                        counters.derived_tuples += 1
                        new_tuples += 1
                        new_delta.add_fact(head_predicate, head_row)
        counters.iterations += 1
        delta = new_delta
    return new_tuples


def _dred_delete(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    removed: Database,
    counters: Counters,
) -> None:
    """Delete-rederive (DRed) maintenance for a positive program, in place.

    ``removed`` holds the deleted EDB rows; ``database`` holds the complete
    model over the pre-deletion extensional state.

    *Overdelete.*  Seeded with the EDB deletions, each round fires every
    rule through its ``delta_first`` plan variants with the chosen
    occurrence reading the current delete-frontier and every other literal
    reading the pre-deletion database, so a derived tuple joins the
    overdeletion set as soon as any of its derivations is discovered to
    pass through a deleted tuple.  The deleted EDB rows are kept visible --
    re-added first, in case a copy-on-write leak already dropped them --
    until the fixpoint completes: an instantiation using *two* deleted
    tuples must remain discoverable from either occurrence.

    *Remove.*  The deleted EDB rows and every overdeleted derived row are
    physically removed (the storage kernel maintains its indexes
    incrementally under removal).

    *Rederive.*  Every overdeleted tuple that still has a derivation from
    the surviving facts is reinserted.  The rederivation is set-at-a-time:
    per defining rule, a *guarded* plan variant scans the overdeleted set
    as its outermost occurrence (a synthetic extra occurrence of the head
    literal, compiled through the ordinary ``delta_plan`` machinery) and
    joins the rest of the body against the surviving database, so one plan
    execution settles every candidate of the rule instead of one probe per
    tuple.  Predicates are visited in component evaluation order so lower
    support is restored before it is needed, and the reinsertions are
    propagated through the ordinary delta-seeded seminaive rounds
    (:func:`_resume_positive`), which resurrect any overdeleted tuple they
    transitively re-support.  Cyclically self-supporting tuples stay
    deleted: the guarded joins run against the post-removal database,
    which is exactly the well-foundedness DRed needs.
    """
    for predicate in removed.predicates():
        database.add_facts(predicate, removed.relations[predicate].table.all_rows())

    delta_predicates = frozenset(program.predicates)
    scan_rules = [rule for rule in program.idb_rules() if not rule.is_aggregate]
    variants = [
        (rule, delta_plans(rule, delta_predicates, delta_first=True, database=database))
        for rule in scan_rules
    ]
    overdeleted = Database()
    frontier = removed
    while frontier.total_facts():
        next_frontier = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                # The overdelete loop never mutates ``database`` (it only
                # accumulates into ``overdeleted``/``next_frontier``), so
                # even self-feeding-shaped plans batch without verification.
                batch = _batch_heads(plan, database, derived=frontier, frozen=True)
                if batch is not None:
                    counters.rule_firings += len(batch)
                    new_rows = overdeleted.add_rows(head_predicate, batch, journal=False)
                    if new_rows:
                        next_frontier.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                    continue
                for head_row in plan.heads(database, derived=frontier):
                    counters.rule_firings += 1
                    if overdeleted.add_fact(head_predicate, head_row):
                        next_frontier.add_fact(head_predicate, head_row)
        counters.iterations += 1
        frontier = next_frontier

    for source in (removed, overdeleted):
        for predicate in source.predicates():
            for row in list(source.relations[predicate].table.all_rows()):
                database.remove_fact(predicate, row)

    if not overdeleted.total_facts():
        return
    component_order: Dict[str, int] = {}
    for index, component in enumerate(analysis.evaluation_order()):
        for predicate in component:
            component_order[predicate] = index
    rederived = Database()
    for predicate in sorted(
        overdeleted.predicates(), key=lambda p: component_order.get(p, 0)
    ):
        for rule in program.rules_for(predicate):
            if not rule.body:
                continue
            # The guarded variant: a synthetic extra occurrence of the head
            # literal, placed outermost and reading the overdeleted set, so
            # the join enumerates exactly the rule's still-derivable
            # candidates.  ``delta_occurrence=0`` is the guard itself; every
            # other occurrence of ``predicate`` reads the surviving database.
            guarded = Rule(rule.head, (rule.head,) + rule.body)
            plan = delta_plan(
                guarded, frozenset((predicate,)), 0, delta_first=True, database=database
            )
            batch = _batch_heads(plan, database, derived=overdeleted)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(predicate, batch)
                if new_rows:
                    rederived.add_rows(predicate, new_rows, journal=False)
                continue
            for head_row in plan.heads(database, derived=overdeleted):
                counters.rule_firings += 1
                if database.add_fact(predicate, head_row):
                    rederived.add_fact(predicate, head_row)
    if rederived.total_facts():
        _resume_positive(program, analysis, database, rederived, counters)


def _resume_non_monotone(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    delta: Delta,
    counters: Counters,
) -> Tuple[Database, int]:
    """The stratified resume: apply the signed EDB delta, restart above it.

    Both signs are non-monotone through negation and aggregation -- a new
    fact below a ``not`` can retract consequences above it, a deleted one
    can create them -- so the delta is applied to the extensional relations
    and every stratum from the lowest one reading a touched predicate is
    recomputed; see :func:`_restart_from_lowest_affected`.  Delta rows are
    treated as touching their predicate even when the mutation itself is a
    no-op here (a copy-on-write materialization can see the base database's
    writes before their consequences are maintained).
    """
    touched = {p for p, rows in delta.inserts.items() if rows} | {
        p for p, rows in delta.deletes.items() if rows
    }
    for predicate, rows in delta.deletes.items():
        for row in rows:
            database.remove_fact(predicate, row)
    for predicate, rows in delta.inserts.items():
        for row in rows:
            database.add_fact(predicate, row)
    if not touched:
        return database, 0
    return _restart_from_lowest_affected(program, analysis, database, touched, counters)


def _restart_from_lowest_affected(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    changed_predicates: Set[str],
    counters: Counters,
) -> Tuple[Database, int]:
    """The non-monotone resume: recompute every stratum the delta can reach.

    The replacement database shares the extensional relations and every
    derived relation of the strata *below* the restart point copy-on-write
    (reusing those cached models untouched) and simply omits the rest before
    re-running the stratum scheduler from the restart point.
    """
    stratification = Stratification.of(program, analysis)
    restart = stratification.lowest_affected_stratum(changed_predicates)
    if restart is None:
        return database, 0
    derived_predicates = program.derived_predicates
    dropped: Set[str] = set()
    for stratum in stratification.strata[restart:]:
        dropped |= stratum.predicates & derived_predicates
    rebuilt = Database.overlay(database, counters=counters, exclude=dropped)
    before = counters.derived_tuples
    for stratum in stratification.strata[restart:]:
        if stratification.stratum_rules(stratum):
            _seminaive_stratum(stratum, program, rebuilt, counters)
    return rebuilt, counters.derived_tuples - before
