"""The shared stratified fixpoint runtime: one stratum scheduler, two drivers.

Historically every bottom-up engine carried its own fixpoint loop (naive a
global Jacobi iteration, seminaive a per-SCC differential loop, magic the
seminaive loop over a rewritten program).  This module is the single home of
those loops, generalised to *stratified* programs -- negation and
aggregation included:

* :func:`evaluate_stratified` asks :class:`~repro.datalog.analysis
  .Stratification` for the ordered strata (raising
  :class:`~repro.datalog.errors.StratificationError` for programs with
  negation or aggregation through recursion) and evaluates them bottom-up.
  Within a stratum every dependency is positive -- negative arcs always
  cross stratum boundaries -- so each stratum is an ordinary monotone
  fixpoint over relations whose negated/aggregated inputs are already
  complete.
* Two **stratum drivers** reproduce the historical engines exactly:
  ``naive=True`` runs the Jacobi iteration over the stratum's rules in
  program order, ``naive=False`` runs the per-component seminaive
  differential loop on the compiled delta plans of
  :mod:`repro.datalog.plans`.  A *positive* program stratifies into exactly
  one stratum whose component order is ``analysis.evaluation_order()``, so
  both drivers are bit-identical -- answers *and* work counters -- to the
  pre-stratification engines; the 88 pinned paper-sample counters enforce
  this.
* Aggregate rules compile to :class:`~repro.datalog.plans.AggregateFold`
  operators and fire exactly once when their component is reached: their
  body predicates live in strictly lower strata, so the fold's inputs cannot
  change during the stratum's own fixpoint.
* :func:`resume_stratified` is the incremental path of the
  materialize/answer/resume contract, and it now accepts *signed* deltas
  (:class:`~repro.datalog.database.Delta`: inserts and deletes).  For
  positive programs insertions are the PR-3 seminaive continuation (a delta
  computation seeded with the EDB delta) and deletions run the
  **delete-rederive (DRed)** maintenance of Gupta-Mumick-Subrahmanian:

  1. *overdelete* -- every derived tuple with at least one derivation
     through a deleted tuple is collected to a fixpoint, driven from the
     delete-delta side by the same ``delta_first`` join plans the insertion
     resume uses;
  2. *remove* -- the deleted EDB rows and the overdeleted derived rows are
     physically removed (the storage kernel maintains its hash and
     adjacency indexes incrementally under removal);
  3. *rederive* -- each overdeleted tuple that still has a derivation from
     the surviving facts is reinserted (a head-bound join probe per rule),
     and the reinsertions are propagated with the ordinary delta-seeded
     seminaive rounds, resurrecting any overdeleted tuple they re-support.

  Stratified programs are non-monotone under *either* sign -- a new ``move``
  fact can retract a ``not win`` consequence, a deleted one can create it --
  so the resume restarts evaluation at the lowest stratum whose inputs the
  delta touches, reusing the cached models of every lower stratum via a
  copy-on-write overlay that simply drops the affected derived relations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datalog.analysis import ProgramAnalysis, Stratification, analyze
from ..datalog.database import Database, Delta, Row
from ..datalog import plans as _plans
from ..datalog.plans import aggregate_plan, delta_plan, delta_plans, rule_plan
from ..datalog.rules import Program, Rule
from ..instrumentation import Counters


def _batch_heads(
    plan,
    database: Database,
    derived: Optional[Database] = None,
    frozen: bool = False,
) -> Optional[List[Row]]:
    """All head rows of one whole-batch plan execution, or ``None``.

    ``None`` -- because the columnar mode is off, the plan's shape is not
    batchable, or an optimistic batch was discarded -- sends the caller to
    the row-at-a-time ``plan.heads`` loop.  Every firing loop below satisfies
    :meth:`~repro.datalog.plans.JoinPlan.head_batch`'s consumption contract:
    between the call and the insertion of the returned rows, only the plan's
    head relation of ``database`` (and databases the plan does not read) is
    written.
    """
    if _plans._mode != _plans._MODE_COLUMNAR:
        return None
    return plan.head_batch(database, derived=derived, frozen=frozen)


# ---------------------------------------------------------------------------
# Forward evaluation
# ---------------------------------------------------------------------------

def evaluate_stratified(
    program: Program,
    database: Database,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
    naive: bool = False,
) -> int:
    """Evaluate every stratum of ``program`` bottom-up, in place.

    Returns the total number of outer-loop rounds (the sum of per-stratum
    Jacobi rounds under the naive driver; the seminaive driver reports its
    rounds through ``counters.iterations`` as it always has).

    Raises :class:`~repro.datalog.errors.StratificationError` when the
    program has no stratification.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)
    stratification = Stratification.of(program, analysis)
    total_rounds = 0
    for stratum in stratification.strata:
        rules = stratification.stratum_rules(stratum)
        if not rules:
            continue
        if naive:
            total_rounds += _jacobi_stratum(rules, database, counters)
        else:
            _seminaive_stratum(stratum, program, database, counters)
    return total_rounds


def _jacobi_stratum(rules: List[Rule], database: Database, counters: Counters) -> int:
    """The naive driver: refire every rule of the stratum until no new tuple.

    This is the historical naive loop verbatim (rules in program order, one
    plan per rule, full refiring every round -- the duplication the paper
    measures), preceded by the stratum's aggregate folds, which fire once.
    """
    scan_rules = [rule for rule in rules if not rule.is_aggregate]
    _fire_folds(rules, database, counters)
    plans = [(rule.head.predicate, rule_plan(rule)) for rule in scan_rules]
    iterations = 0
    changed = True
    while changed:
        iterations += 1
        counters.iterations += 1
        changed = False
        for head_predicate, plan in plans:
            batch = _batch_heads(plan, database)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(head_predicate, batch)
                if new_rows:
                    counters.derived_tuples += len(new_rows)
                    changed = True
                continue
            for head_row in plan.heads(database):
                counters.rule_firings += 1
                if database.add_fact(head_predicate, head_row):
                    counters.derived_tuples += 1
                    changed = True
    return iterations


def _seminaive_stratum(
    stratum, program: Program, database: Database, counters: Counters
) -> None:
    """The seminaive driver: per-component differential fixpoints.

    Components are processed in the stratum's evaluation order (the reverse
    topological order of the SCCs, filtered to the stratum), exactly as the
    historical seminaive engine processed ``analysis.evaluation_order()``.
    """
    derived_predicates = program.derived_predicates
    for component in stratum.components:
        component_predicates = set(component) & derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        evaluate_component(rules, component_predicates, database, counters)
    return None


def _fire_folds(
    rules: Iterable[Rule],
    database: Database,
    counters: Counters,
    delta: Optional[Database] = None,
) -> None:
    """Fire the aggregate folds among ``rules`` once over the current state."""
    for rule in rules:
        if not rule.is_aggregate:
            continue
        head_predicate = rule.head.predicate
        for head_row in aggregate_plan(rule).heads(database):
            counters.rule_firings += 1
            if database.add_fact(head_predicate, head_row):
                counters.derived_tuples += 1
                if delta is not None:
                    delta.add_fact(head_predicate, head_row)


def evaluate_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    counters: Counters,
) -> None:
    """Seminaive iteration for one group of mutually recursive predicates.

    Both the round-0 full evaluation and the delta-restricted rounds run on
    compiled join plans (:mod:`repro.datalog.plans`); the delta rounds use
    one cached plan variant per recursive body occurrence, whose chosen
    occurrence reads the delta relation while every other literal reads the
    full database (including earlier deltas already merged into it).  Plan
    compilation rejects built-ins that can never become ground and negated
    literals the positive body never binds, so the deferral semantics cannot
    diverge from :func:`~repro.datalog.unify.satisfy_body` -- they are the
    same code path.  Aggregate rules fold once in round 0 (their inputs live
    in strictly lower strata and cannot change here); negated literals never
    read the delta (stratification puts them below this component).
    """
    scan_rules = [rule for rule in rules if not rule.is_aggregate]
    recursive_key = frozenset(recursive_predicates)
    # Round 0: fire every rule once over the current database.
    delta = Database()
    _fire_folds(rules, database, counters, delta)
    round0 = [(rule, rule_plan(rule)) for rule in scan_rules]
    for rule, plan in round0:
        head_predicate = rule.head.predicate
        batch = _batch_heads(plan, database)
        if batch is not None:
            counters.rule_firings += len(batch)
            new_rows = database.add_rows(head_predicate, batch)
            if new_rows:
                counters.derived_tuples += len(new_rows)
                delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
            continue
        for head_row in plan.heads(database):
            counters.rule_firings += 1
            if database.add_fact(head_predicate, head_row):
                counters.derived_tuples += 1
                delta.add_fact(head_predicate, head_row)
    counters.iterations += 1

    # One plan variant per occurrence of a recursive predicate, with that
    # occurrence restricted to the delta.  Non-recursive rules have no
    # variants and cannot produce anything new after round 0.
    variants = [(rule, delta_plans(rule, recursive_key)) for rule in scan_rules]
    while delta.total_facts():
        new_delta = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                batch = _batch_heads(plan, database, derived=delta)
                if batch is not None:
                    counters.rule_firings += len(batch)
                    new_rows = database.add_rows(head_predicate, batch)
                    if new_rows:
                        counters.derived_tuples += len(new_rows)
                        new_delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                    continue
                for head_row in plan.heads(database, derived=delta):
                    counters.rule_firings += 1
                    if database.add_fact(head_predicate, head_row):
                        counters.derived_tuples += 1
                        new_delta.add_fact(head_predicate, head_row)
        counters.iterations += 1
        delta = new_delta


# ---------------------------------------------------------------------------
# Incremental continuation (the resume path of the engine contract)
# ---------------------------------------------------------------------------

def resume_stratified(
    program: Program,
    database: Database,
    edb_delta,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> Tuple[Database, int]:
    """Bring a materialized model up to date after an EDB delta.

    ``database`` must hold a complete model of ``program`` over its previous
    extensional state; ``edb_delta`` is either a plain ``{predicate: rows}``
    mapping of newly inserted rows (the pre-deletion contract) or a signed
    :class:`~repro.datalog.database.Delta` carrying inserts *and* deletes.
    Returns ``(database, newly_derived_count)`` where the database is the
    *same instance* for positive programs (deletions maintained in place by
    delete-rederive, insertions by the seminaive continuation -- deletions
    first, so the insertion rounds run over the already-repaired model) and
    a fresh copy-on-write replacement for stratified programs (evaluation
    restarted at the lowest stratum whose inputs the delta touches; see the
    module docstring).  Rows on derived predicates are rejected with
    :class:`ValueError`.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)
    derived_predicates = program.derived_predicates

    delta = Delta.coerce(edb_delta)
    for predicate in delta.predicates():
        if predicate in derived_predicates:
            raise ValueError(
                f"cannot resume with facts for derived predicate {predicate!r}"
            )

    if not program.is_positive:
        return _resume_non_monotone(program, analysis, database, delta, counters)

    new_tuples = 0
    if delta.has_deletes:
        # The delete rows are treated as deleted even when already invisible
        # in ``database`` -- mirroring the insertion convention below, a
        # copy-on-write materialization can see a deletion made to the
        # database it was built over before its consequences have been
        # retracted, and overdeleting from a long-gone row only schedules
        # still-valid tuples for rederivation.
        removed = Database()
        for predicate, rows in delta.deletes.items():
            for row in rows:
                removed.add_fact(predicate, row)
        if removed.total_facts():
            _dred_delete(program, analysis, database, removed, counters)

    # The cross-component changed set: the EDB insert delta plus, as
    # evaluation proceeds, every derived tuple added by an earlier
    # component.  The delta rows are treated as changed even when they are
    # already visible in ``database`` -- a copy-on-write materialization can
    # see an insertion made to the database it was built over before its
    # consequences have been derived, and firing a genuinely old row again
    # only rediscovers existing facts.
    changed = Database()
    for predicate, rows in delta.inserts.items():
        for row in rows:
            database.add_fact(predicate, row)
            changed.add_fact(predicate, row)
    if changed.total_facts():
        new_tuples = _resume_positive(program, analysis, database, changed, counters)
    return database, new_tuples


def _resume_positive(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    changed: Database,
    counters: Counters,
) -> int:
    """The monotone continuation: seminaive rounds seeded with the delta."""
    derived_predicates = program.derived_predicates
    new_tuples = 0
    for component in analysis.evaluation_order():
        component_predicates = set(component) & derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        new_tuples += _resume_component(
            rules, component_predicates, database, changed, counters
        )
    return new_tuples


def _resume_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    changed: Database,
    counters: Counters,
) -> int:
    """Delta-seeded seminaive iteration for one mutually recursive group.

    ``changed`` holds every row that is new since the materialized fixpoint
    (EDB delta plus earlier components' derivations); new rows produced here
    are merged back into it so later components see them as deltas too.
    """
    changed_predicates = frozenset(
        predicate for predicate in changed.predicates() if changed.count(predicate)
    )
    new_tuples = 0

    # Incremental round 0: one plan variant per occurrence of an
    # already-changed predicate, that occurrence restricted to the changed
    # rows, every other literal reading the full updated database.  A rule
    # mentioning no changed predicate has no variants and never fires, and
    # the delta occurrence drives the join (``delta_first``), so the round's
    # work is proportional to the delta, not to the full relations.
    delta = Database()
    fired = False
    for rule in rules:
        head_predicate = rule.head.predicate
        for plan in delta_plans(rule, changed_predicates, delta_first=True):
            fired = True
            batch = _batch_heads(plan, database, derived=changed)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(head_predicate, batch)
                if new_rows:
                    counters.derived_tuples += len(new_rows)
                    new_tuples += len(new_rows)
                    delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                continue
            for head_row in plan.heads(database, derived=changed):
                counters.rule_firings += 1
                if database.add_fact(head_predicate, head_row):
                    counters.derived_tuples += 1
                    new_tuples += 1
                    delta.add_fact(head_predicate, head_row)
    if not fired:
        return 0
    counters.iterations += 1

    # Ordinary recursive delta rounds, delta-driven like round 0.
    recursive_key = frozenset(recursive_predicates)
    variants = [
        (rule, delta_plans(rule, recursive_key, delta_first=True)) for rule in rules
    ]
    while delta.total_facts():
        for predicate in delta.predicates():
            changed.add_facts(predicate, delta.rows(predicate))
        new_delta = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                batch = _batch_heads(plan, database, derived=delta)
                if batch is not None:
                    counters.rule_firings += len(batch)
                    new_rows = database.add_rows(head_predicate, batch)
                    if new_rows:
                        counters.derived_tuples += len(new_rows)
                        new_tuples += len(new_rows)
                        new_delta.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                    continue
                for head_row in plan.heads(database, derived=delta):
                    counters.rule_firings += 1
                    if database.add_fact(head_predicate, head_row):
                        counters.derived_tuples += 1
                        new_tuples += 1
                        new_delta.add_fact(head_predicate, head_row)
        counters.iterations += 1
        delta = new_delta
    return new_tuples


def _dred_delete(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    removed: Database,
    counters: Counters,
) -> None:
    """Delete-rederive (DRed) maintenance for a positive program, in place.

    ``removed`` holds the deleted EDB rows; ``database`` holds the complete
    model over the pre-deletion extensional state.

    *Overdelete.*  Seeded with the EDB deletions, each round fires every
    rule through its ``delta_first`` plan variants with the chosen
    occurrence reading the current delete-frontier and every other literal
    reading the pre-deletion database, so a derived tuple joins the
    overdeletion set as soon as any of its derivations is discovered to
    pass through a deleted tuple.  The deleted EDB rows are kept visible --
    re-added first, in case a copy-on-write leak already dropped them --
    until the fixpoint completes: an instantiation using *two* deleted
    tuples must remain discoverable from either occurrence.

    *Remove.*  The deleted EDB rows and every overdeleted derived row are
    physically removed (the storage kernel maintains its indexes
    incrementally under removal).

    *Rederive.*  Every overdeleted tuple that still has a derivation from
    the surviving facts is reinserted.  The rederivation is set-at-a-time:
    per defining rule, a *guarded* plan variant scans the overdeleted set
    as its outermost occurrence (a synthetic extra occurrence of the head
    literal, compiled through the ordinary ``delta_plan`` machinery) and
    joins the rest of the body against the surviving database, so one plan
    execution settles every candidate of the rule instead of one probe per
    tuple.  Predicates are visited in component evaluation order so lower
    support is restored before it is needed, and the reinsertions are
    propagated through the ordinary delta-seeded seminaive rounds
    (:func:`_resume_positive`), which resurrect any overdeleted tuple they
    transitively re-support.  Cyclically self-supporting tuples stay
    deleted: the guarded joins run against the post-removal database,
    which is exactly the well-foundedness DRed needs.
    """
    for predicate in removed.predicates():
        database.add_facts(predicate, removed.relations[predicate].table.all_rows())

    delta_predicates = frozenset(program.predicates)
    scan_rules = [rule for rule in program.idb_rules() if not rule.is_aggregate]
    variants = [
        (rule, delta_plans(rule, delta_predicates, delta_first=True))
        for rule in scan_rules
    ]
    overdeleted = Database()
    frontier = removed
    while frontier.total_facts():
        next_frontier = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                # The overdelete loop never mutates ``database`` (it only
                # accumulates into ``overdeleted``/``next_frontier``), so
                # even self-feeding-shaped plans batch without verification.
                batch = _batch_heads(plan, database, derived=frontier, frozen=True)
                if batch is not None:
                    counters.rule_firings += len(batch)
                    new_rows = overdeleted.add_rows(head_predicate, batch, journal=False)
                    if new_rows:
                        next_frontier.add_rows(head_predicate, new_rows, journal=False, distinct=True)
                    continue
                for head_row in plan.heads(database, derived=frontier):
                    counters.rule_firings += 1
                    if overdeleted.add_fact(head_predicate, head_row):
                        next_frontier.add_fact(head_predicate, head_row)
        counters.iterations += 1
        frontier = next_frontier

    for source in (removed, overdeleted):
        for predicate in source.predicates():
            for row in list(source.relations[predicate].table.all_rows()):
                database.remove_fact(predicate, row)

    if not overdeleted.total_facts():
        return
    component_order: Dict[str, int] = {}
    for index, component in enumerate(analysis.evaluation_order()):
        for predicate in component:
            component_order[predicate] = index
    rederived = Database()
    for predicate in sorted(
        overdeleted.predicates(), key=lambda p: component_order.get(p, 0)
    ):
        for rule in program.rules_for(predicate):
            if not rule.body:
                continue
            # The guarded variant: a synthetic extra occurrence of the head
            # literal, placed outermost and reading the overdeleted set, so
            # the join enumerates exactly the rule's still-derivable
            # candidates.  ``delta_occurrence=0`` is the guard itself; every
            # other occurrence of ``predicate`` reads the surviving database.
            guarded = Rule(rule.head, (rule.head,) + rule.body)
            plan = delta_plan(guarded, frozenset((predicate,)), 0, delta_first=True)
            batch = _batch_heads(plan, database, derived=overdeleted)
            if batch is not None:
                counters.rule_firings += len(batch)
                new_rows = database.add_rows(predicate, batch)
                if new_rows:
                    rederived.add_rows(predicate, new_rows, journal=False)
                continue
            for head_row in plan.heads(database, derived=overdeleted):
                counters.rule_firings += 1
                if database.add_fact(predicate, head_row):
                    rederived.add_fact(predicate, head_row)
    if rederived.total_facts():
        _resume_positive(program, analysis, database, rederived, counters)


def _resume_non_monotone(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    delta: Delta,
    counters: Counters,
) -> Tuple[Database, int]:
    """The stratified resume: apply the signed EDB delta, restart above it.

    Both signs are non-monotone through negation and aggregation -- a new
    fact below a ``not`` can retract consequences above it, a deleted one
    can create them -- so the delta is applied to the extensional relations
    and every stratum from the lowest one reading a touched predicate is
    recomputed; see :func:`_restart_from_lowest_affected`.  Delta rows are
    treated as touching their predicate even when the mutation itself is a
    no-op here (a copy-on-write materialization can see the base database's
    writes before their consequences are maintained).
    """
    touched = {p for p, rows in delta.inserts.items() if rows} | {
        p for p, rows in delta.deletes.items() if rows
    }
    for predicate, rows in delta.deletes.items():
        for row in rows:
            database.remove_fact(predicate, row)
    for predicate, rows in delta.inserts.items():
        for row in rows:
            database.add_fact(predicate, row)
    if not touched:
        return database, 0
    return _restart_from_lowest_affected(program, analysis, database, touched, counters)


def _restart_from_lowest_affected(
    program: Program,
    analysis: ProgramAnalysis,
    database: Database,
    changed_predicates: Set[str],
    counters: Counters,
) -> Tuple[Database, int]:
    """The non-monotone resume: recompute every stratum the delta can reach.

    The replacement database shares the extensional relations and every
    derived relation of the strata *below* the restart point copy-on-write
    (reusing those cached models untouched) and simply omits the rest before
    re-running the stratum scheduler from the restart point.
    """
    stratification = Stratification.of(program, analysis)
    restart = stratification.lowest_affected_stratum(changed_predicates)
    if restart is None:
        return database, 0
    derived_predicates = program.derived_predicates
    dropped: Set[str] = set()
    for stratum in stratification.strata[restart:]:
        dropped |= stratum.predicates & derived_predicates
    rebuilt = Database.overlay(database, counters=counters, exclude=dropped)
    before = counters.derived_tuples
    for stratum in stratification.strata[restart:]:
        if stratification.stratum_rules(stratum):
            _seminaive_stratum(stratum, program, rebuilt, counters)
    return rebuilt, counters.derived_tuples - before
