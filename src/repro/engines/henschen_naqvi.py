"""The Henschen-Naqvi iterative method [7].

Henschen and Naqvi compile a linearly recursive query into an iterative
program that manipulates *sets of nodes* (unary relations) rather than sets
of arcs.  For an equation of the form

    p  =  e0 ∪ e1 · p · e2          (query p(a, Y))

the answer is  ∪_{i≥0}  e2^i( e0( e1^i({a}) ) ),  and the method evaluates it
iteration by iteration: take the i-th image of {a} under e1, push it through
e0, then apply e2 i times.

The crucial difference from the paper's graph-traversal algorithm (discussed
around Figure 7(c)) is that Henschen-Naqvi has no memory of previously
traversed paths: the trailing ``e2^i`` walk is recomputed from scratch at
every iteration, so on sample (c) the work grows quadratically while the
graph traversal stays linear.  This implementation deliberately keeps that
behaviour.
"""

from __future__ import annotations

from typing import Optional, Set

from ..datalog.database import Database
from ..datalog.errors import NotApplicableError
from ..datalog.literals import Literal
from ..datalog.plans import compile_image
from ..datalog.rules import Program
from ..datalog.terms import Constant, Variable
from ..instrumentation import Counters
from ..core.cyclic import decompose_linear
from ..core.lemma1 import transform
from .base import Engine, EngineResult, register


@register
class HenschenNaqviEngine(Engine):
    """Iterative set-at-a-time evaluation of linear binary-chain queries."""

    name = "henschen-naqvi"

    def __init__(self, max_iterations: Optional[int] = None):
        self.max_iterations = max_iterations

    def applicable(self, program: Program, query: Literal) -> bool:
        if query.arity != 2 or not isinstance(query.args[0], Constant):
            return False
        try:
            system = transform(program).system
            decompose_linear(system, query.predicate)
            return True
        except NotApplicableError:
            return False

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        if query.arity != 2:
            raise NotApplicableError("Henschen-Naqvi handles binary queries only")
        first, second = query.args
        if not isinstance(first, Constant):
            raise NotApplicableError(
                "Henschen-Naqvi needs the first argument of the query to be bound"
            )
        system = transform(program).system
        decomposition = decompose_linear(system, query.predicate)
        e0, e1, e2 = decomposition.base, decomposition.left, decomposition.right
        image_e0 = compile_image(e0)
        image_e1 = compile_image(e1) if e1 is not None else None
        image_e2 = compile_image(e2) if e2 is not None else None

        bound = self.max_iterations
        if bound is None:
            # Safe default: the number of values in the database bounds the
            # number of distinct node sets on the e1 side.
            bound = database.active_domain_size() + 1

        answers: Set[object] = set()
        frontier: Set[object] = {first.value}
        iterations = 0
        seen_frontiers: Set[frozenset] = set()
        while frontier and iterations <= bound:
            counters.iterations += 1
            # e0 image of the current node set ...
            generation = image_e0(frontier, database, counters)
            # ... pushed down through e2 exactly `iterations` times, recomputed
            # from scratch (no memory of earlier walks).
            descend = generation
            for _ in range(iterations):
                descend = image_e2(descend, database, counters) if image_e2 is not None else descend
                if not descend:
                    break
            answers |= descend
            iterations += 1
            if image_e1 is None:
                break
            frontier = image_e1(frontier, database, counters)
            key = frozenset(frontier)
            if key in seen_frontiers:
                # Cyclic e1 data: the frontier repeats; with no new nodes the
                # remaining iterations can only repeat earlier work, but to
                # stay faithful we stop only when the frontier has been seen
                # `bound` times worth of iterations.
                if iterations > bound:
                    break
            seen_frontiers.add(key)

        result_answers = set()
        if isinstance(second, Constant):
            if second.value in answers:
                result_answers = {()}
        elif isinstance(second, Variable) and second == first:
            result_answers = {(v,) for v in answers if v == first.value}
        else:
            result_answers = {(v,) for v in answers}
        return EngineResult(
            answers=result_answers,
            engine=self.name,
            counters=counters,
            iterations=iterations,
            details={"decomposition": decomposition},
        )
