"""Seminaive bottom-up evaluation [2].

The standard differential fixpoint: at every round each recursive rule is
evaluated with one occurrence of a recursive body predicate restricted to the
tuples derived in the previous round (the *delta*), so a rule instantiation
is never recomputed from the same new tuple twice.  Non-recursive predicates
are still read from the full database.  This removes most of the duplication
of naive evaluation but, like naive evaluation, it computes the entire
derived relation: bindings in the query are not exploited, which is why the
bottom-up methods are usually combined with a rewriting such as magic sets
(:mod:`repro.engines.magic`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.analysis import ProgramAnalysis, analyze
from ..datalog.database import Database, Row
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.semantics import answer_against_relation
from ..datalog.unify import instantiate_rule
from ..instrumentation import Counters
from .base import Engine, EngineResult, register


@register
class SeminaiveEngine(Engine):
    """Seminaive (differential) bottom-up fixpoint evaluation."""

    name = "seminaive"

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        derived = evaluate_seminaive(program, database, counters)
        answers = answer_against_relation(derived.rows(query.predicate), query)
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={"derived_size": derived.count(query.predicate)},
        )


def evaluate_seminaive(
    program: Program,
    database: Database,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> Database:
    """Compute all derived relations seminaively; returns the full database.

    The database passed in is extended in place with the derived tuples (it
    already shares the counters), and also returned for convenience.  The
    derived predicates are processed one strongly connected component at a
    time, bottom-up, which is the usual stratification by dependency.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)

    for component in analysis.evaluation_order():
        component_predicates = set(component) & program.derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        _evaluate_component(rules, component_predicates, database, counters)
    return database


def _evaluate_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    counters: Counters,
) -> None:
    """Seminaive iteration for one group of mutually recursive predicates."""
    # Round 0: fire every rule once over the current database.
    delta = Database()
    for rule in rules:
        for head_row, _ in instantiate_rule(rule, database):
            counters.rule_firings += 1
            if database.add_fact(rule.head.predicate, head_row):
                counters.derived_tuples += 1
                delta.add_fact(rule.head.predicate, head_row)
    counters.iterations += 1

    while delta.total_facts():
        new_delta = Database()
        for rule in rules:
            recursive_body = [
                lit for lit in rule.body
                if not lit.is_builtin and lit.predicate in recursive_predicates
            ]
            if not recursive_body:
                continue  # non-recursive rules cannot produce anything new
            # One evaluation pass per occurrence of a recursive predicate,
            # with that occurrence restricted to the delta.
            for occurrence_index, occurrence in enumerate(recursive_body):
                for head_row, _ in _instantiate_with_delta(
                    rule, occurrence_index, recursive_predicates, database, delta
                ):
                    counters.rule_firings += 1
                    if database.add_fact(rule.head.predicate, head_row):
                        counters.derived_tuples += 1
                        new_delta.add_fact(rule.head.predicate, head_row)
        counters.iterations += 1
        delta = new_delta


def _instantiate_with_delta(
    rule: Rule,
    occurrence_index: int,
    recursive_predicates: Set[str],
    database: Database,
    delta: Database,
):
    """Instantiate ``rule`` with the given recursive occurrence bound to the delta.

    Implemented by reordering nothing: we walk the body as usual, but the
    chosen occurrence is matched against the delta relation only, while all
    other literals are matched against the full database (including earlier
    deltas already merged into it).
    """
    from ..datalog.unify import apply_to_literal, match_literal
    from ..datalog.errors import EvaluationError

    def satisfy(index: int, recursive_seen: int, substitution):
        if index >= len(rule.body):
            head = apply_to_literal(rule.head, substitution)
            if not head.is_ground:
                raise EvaluationError(f"rule {rule} produced a non-ground head")
            yield head.constant_values(), substitution
            return
        literal = rule.body[index]
        if literal.is_builtin:
            grounded = apply_to_literal(literal, substitution)
            if grounded.is_ground:
                if grounded.evaluate_builtin():
                    yield from satisfy(index + 1, recursive_seen, substitution)
                return
            # Defer: builtins are re-checked once more bindings exist.
            for result in satisfy(index + 1, recursive_seen, substitution):
                final_literal = apply_to_literal(literal, result[1])
                if final_literal.is_ground and final_literal.evaluate_builtin():
                    yield result
            return
        is_recursive = literal.predicate in recursive_predicates
        use_delta = is_recursive and recursive_seen == occurrence_index
        source = delta if use_delta else database
        bound = apply_to_literal(literal, substitution)
        for row in source.match(bound):
            extended = match_literal(literal, row, substitution)
            if extended is None:
                continue
            yield from satisfy(
                index + 1, recursive_seen + (1 if is_recursive else 0), extended
            )

    yield from satisfy(0, 0, {})
