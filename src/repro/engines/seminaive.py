"""Seminaive bottom-up evaluation [2].

The standard differential fixpoint: at every round each recursive rule is
evaluated with one occurrence of a recursive body predicate restricted to the
tuples derived in the previous round (the *delta*), so a rule instantiation
is never recomputed from the same new tuple twice.  Non-recursive predicates
are still read from the full database.  This removes most of the duplication
of naive evaluation but, like naive evaluation, it computes the entire
derived relation: bindings in the query are not exploited, which is why the
bottom-up methods are usually combined with a rewriting such as magic sets
(:mod:`repro.engines.magic`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datalog.analysis import ProgramAnalysis, analyze
from ..datalog.database import Database, Row
from ..datalog.literals import Literal
from ..datalog.plans import delta_plans, rule_plan
from ..datalog.rules import Program, Rule
from ..datalog.semantics import answer_against_relation
from ..instrumentation import Counters
from .base import Engine, EngineResult, Materialization, ModelMaterialization, register


@register
class SeminaiveEngine(Engine):
    """Seminaive (differential) bottom-up fixpoint evaluation."""

    name = "seminaive"

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        derived = evaluate_seminaive(program, database, counters)
        answers = answer_against_relation(derived.rows(query.predicate), query)
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={"derived_size": derived.count(query.predicate)},
        )

    def materialize(
        self,
        program: Program,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> Materialization:
        """Compute the full least model once; answers are relation lookups."""
        counters = counters if counters is not None else Counters()
        combined, basis_version = self._materialization_base(program, database, counters)
        analysis = analyze(program)
        evaluate_seminaive(program, combined, counters, analysis)
        return ModelMaterialization(
            self, program, combined, basis_version, counters, analysis=analysis
        )


def evaluate_seminaive(
    program: Program,
    database: Database,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> Database:
    """Compute all derived relations seminaively; returns the full database.

    The database passed in is extended in place with the derived tuples (it
    already shares the counters), and also returned for convenience.  The
    derived predicates are processed one strongly connected component at a
    time, bottom-up, which is the usual stratification by dependency.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)

    for component in analysis.evaluation_order():
        component_predicates = set(component) & program.derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        _evaluate_component(rules, component_predicates, database, counters)
    return database


def _evaluate_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    counters: Counters,
) -> None:
    """Seminaive iteration for one group of mutually recursive predicates.

    Both the round-0 full evaluation and the delta-restricted rounds run on
    compiled join plans (:mod:`repro.datalog.plans`); the delta rounds use
    one cached plan variant per recursive body occurrence, whose chosen
    occurrence reads the delta relation while every other literal reads the
    full database (including earlier deltas already merged into it).  Plan
    compilation rejects built-ins that can never become ground, so the
    deferral semantics cannot diverge from :func:`~repro.datalog.unify
    .satisfy_body` -- they are the same code path.
    """
    recursive_key = frozenset(recursive_predicates)
    # Round 0: fire every rule once over the current database.
    delta = Database()
    round0 = [(rule, rule_plan(rule)) for rule in rules]
    for rule, plan in round0:
        head_predicate = rule.head.predicate
        for head_row in plan.heads(database):
            counters.rule_firings += 1
            if database.add_fact(head_predicate, head_row):
                counters.derived_tuples += 1
                delta.add_fact(head_predicate, head_row)
    counters.iterations += 1

    # One plan variant per occurrence of a recursive predicate, with that
    # occurrence restricted to the delta.  Non-recursive rules have no
    # variants and cannot produce anything new after round 0.
    variants = [(rule, delta_plans(rule, recursive_key)) for rule in rules]
    while delta.total_facts():
        new_delta = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                for head_row in plan.heads(database, derived=delta):
                    counters.rule_firings += 1
                    if database.add_fact(head_predicate, head_row):
                        counters.derived_tuples += 1
                        new_delta.add_fact(head_predicate, head_row)
        counters.iterations += 1
        delta = new_delta


# ---------------------------------------------------------------------------
# Incremental continuation (the resume path of the engine contract)
# ---------------------------------------------------------------------------

def resume_seminaive(
    program: Program,
    database: Database,
    edb_delta: Dict[str, Iterable[Row]],
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> int:
    """Continue a materialized fixpoint after EDB insertions.

    ``database`` must hold a complete least model of ``program`` over its
    previous extensional state; ``edb_delta`` maps base predicates to the
    newly inserted rows.  Seminaive evaluation is already a delta
    computation, so the continuation is the same machinery seeded with the
    EDB delta instead of round-0 firings: for every strongly connected
    component, each rule is first fired once per occurrence of an
    already-changed predicate with that occurrence restricted to the changed
    rows (the incremental round 0), then the ordinary recursive delta rounds
    run until the fixpoint is re-reached.  Components whose rules mention no
    changed predicate cost nothing.

    The delta rows are treated as changed even when they are already visible
    in ``database`` -- a copy-on-write materialization can see an insertion
    made to the database it was built over before its consequences have been
    derived, and firing an genuinely old row again only rediscovers existing
    facts.  Rows on derived predicates are rejected with :class:`ValueError`.

    Returns the number of newly derived tuples.
    """
    counters = counters if counters is not None else database.counters
    analysis = analysis or analyze(program)
    derived_predicates = program.derived_predicates

    # The cross-component changed set: the EDB delta plus, as evaluation
    # proceeds, every derived tuple added by an earlier component.
    changed = Database()
    for predicate, rows in edb_delta.items():
        if predicate in derived_predicates:
            raise ValueError(
                f"cannot resume with facts for derived predicate {predicate!r}"
            )
        for row in rows:
            database.add_fact(predicate, row)
            changed.add_fact(predicate, row)
    if not changed.total_facts():
        return 0

    new_tuples = 0
    for component in analysis.evaluation_order():
        component_predicates = set(component) & derived_predicates
        if not component_predicates:
            continue
        rules = [
            rule
            for predicate in component_predicates
            for rule in program.rules_for(predicate)
            if rule.body
        ]
        new_tuples += _resume_component(
            rules, component_predicates, database, changed, counters
        )
    return new_tuples


def _resume_component(
    rules: List[Rule],
    recursive_predicates: Set[str],
    database: Database,
    changed: Database,
    counters: Counters,
) -> int:
    """Delta-seeded seminaive iteration for one mutually recursive group.

    ``changed`` holds every row that is new since the materialized fixpoint
    (EDB delta plus earlier components' derivations); new rows produced here
    are merged back into it so later components see them as deltas too.
    """
    changed_predicates = frozenset(
        predicate for predicate in changed.predicates() if changed.count(predicate)
    )
    new_tuples = 0

    # Incremental round 0: one plan variant per occurrence of an
    # already-changed predicate, that occurrence restricted to the changed
    # rows, every other literal reading the full updated database.  A rule
    # mentioning no changed predicate has no variants and never fires, and
    # the delta occurrence drives the join (``delta_first``), so the round's
    # work is proportional to the delta, not to the full relations.
    delta = Database()
    fired = False
    for rule in rules:
        head_predicate = rule.head.predicate
        for plan in delta_plans(rule, changed_predicates, delta_first=True):
            fired = True
            for head_row in plan.heads(database, derived=changed):
                counters.rule_firings += 1
                if database.add_fact(head_predicate, head_row):
                    counters.derived_tuples += 1
                    new_tuples += 1
                    delta.add_fact(head_predicate, head_row)
    if not fired:
        return 0
    counters.iterations += 1

    # Ordinary recursive delta rounds, delta-driven like round 0.
    recursive_key = frozenset(recursive_predicates)
    variants = [
        (rule, delta_plans(rule, recursive_key, delta_first=True)) for rule in rules
    ]
    while delta.total_facts():
        for predicate in delta.predicates():
            changed.add_facts(predicate, delta.rows(predicate))
        new_delta = Database()
        for rule, plans in variants:
            head_predicate = rule.head.predicate
            for plan in plans:
                for head_row in plan.heads(database, derived=delta):
                    counters.rule_firings += 1
                    if database.add_fact(head_predicate, head_row):
                        counters.derived_tuples += 1
                        new_tuples += 1
                        new_delta.add_fact(head_predicate, head_row)
        counters.iterations += 1
        delta = new_delta
    return new_tuples
