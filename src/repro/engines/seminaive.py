"""Seminaive bottom-up evaluation [2].

The standard differential fixpoint: at every round each recursive rule is
evaluated with one occurrence of a recursive body predicate restricted to the
tuples derived in the previous round (the *delta*), so a rule instantiation
is never recomputed from the same new tuple twice.  Non-recursive predicates
are still read from the full database.  This removes most of the duplication
of naive evaluation but, like naive evaluation, it computes the entire
derived relation: bindings in the query are not exploited, which is why the
bottom-up methods are usually combined with a rewriting such as magic sets
(:mod:`repro.engines.magic`).

The fixpoint machinery itself lives in the shared stratified runtime
(:mod:`repro.engines.runtime`): this module contributes only the engine
wrapper and the historical entry points.  Stratified programs (negation,
aggregation) evaluate stratum by stratum; positive programs are the
1-stratum special case and run bit-identically to the historical
single-fixpoint loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..datalog.analysis import ProgramAnalysis, analyze
from ..datalog.database import Database, Row
from ..datalog.errors import EvaluationError
from ..datalog.literals import Literal
from ..datalog.rules import Program
from ..datalog.semantics import answer_against_relation
from ..instrumentation import Counters
from .base import Engine, EngineResult, Materialization, ModelMaterialization, register
from .runtime import evaluate_stratified, resume_stratified


@register
class SeminaiveEngine(Engine):
    """Seminaive (differential) bottom-up fixpoint evaluation."""

    name = "seminaive"

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        derived = evaluate_seminaive(program, database, counters)
        answers = answer_against_relation(derived.rows(query.predicate), query)
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={"derived_size": derived.count(query.predicate)},
        )

    def materialize(
        self,
        program: Program,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> Materialization:
        """Compute the full (stratified) model once; answers are lookups."""
        counters = counters if counters is not None else Counters()
        combined, basis_version = self._materialization_base(program, database, counters)
        analysis = analyze(program)
        evaluate_stratified(program, combined, counters, analysis)
        return ModelMaterialization(
            self, program, combined, basis_version, counters, analysis=analysis
        )


def evaluate_seminaive(
    program: Program,
    database: Database,
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> Database:
    """Compute all derived relations seminaively; returns the full database.

    The database passed in is extended in place with the derived tuples (it
    already shares the counters), and also returned for convenience.  The
    derived predicates are processed stratum by stratum and, within each
    stratum, one strongly connected component at a time, bottom-up -- the
    stratified generalisation of the usual dependency ordering, driven by
    the shared runtime (:func:`repro.engines.runtime.evaluate_stratified`).
    """
    counters = counters if counters is not None else database.counters
    evaluate_stratified(program, database, counters, analysis)
    return database


def resume_seminaive(
    program: Program,
    database: Database,
    edb_delta: Dict[str, Iterable[Row]],
    counters: Optional[Counters] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> int:
    """Continue a materialized fixpoint of a *positive* program in place.

    Seminaive evaluation is already a delta computation, so the continuation
    is the same machinery seeded with the EDB delta instead of round-0
    firings; see :func:`repro.engines.runtime.resume_stratified`, which this
    wraps.  Returns the number of newly derived tuples.  Stratified programs
    cannot be resumed in place (insertions are non-monotone through negation
    and aggregation and the runtime swaps in a rebuilt database), so they are
    rejected here *before* anything is mutated; callers that may see them --
    the model materializations -- use
    :func:`~repro.engines.runtime.resume_stratified` directly.
    """
    if not program.is_positive:
        raise EvaluationError(
            "stratified resume replaces the database; call "
            "repro.engines.runtime.resume_stratified for non-positive programs"
        )
    _, new_tuples = resume_stratified(program, database, edb_delta, counters, analysis)
    return new_tuples
