"""Magic-sets rewriting [3, 5] followed by seminaive evaluation.

The magic-sets strategy pushes the query bindings into a bottom-up
evaluation: the program is first adorned with respect to the query (reusing
:mod:`repro.core.adornment`), then rewritten so that every adorned rule is
guarded by a *magic predicate* holding the bound-argument tuples that are
actually relevant to the query, and finally evaluated with the general
seminaive method.

For an adorned rule

    p^a(X) :- b1(Y1), ..., bi(Yi), q^d(Z), bi+1(Yi+1), ..., bn(Yn)

the rewriting produces

    magic_q^d(Z^b)  :- magic_p^a(X^b), b1(Y1), ..., bi(Yi).
    p^a(X)          :- magic_p^a(X^b), <original body with q adorned>.

seeded with the fact ``magic_q0^a0(c)`` for the query's bound constants.
This is the generalized-magic-sets construction restricted to linear
programs with at most one derived literal per body -- the same class the
paper's Section 4 handles, which makes the comparison fair.

The rewritten rules are evaluated through the shared seminaive fixpoint,
whose inner loops run on the compiled join plans of
:mod:`repro.datalog.plans`; because the plan cache is keyed by rule, the
magic and guarded rules produced for one query are compiled once and reused
across the fixpoint rounds (and across repeated queries with the same
binding pattern, whose rewritten rules are structurally identical).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.adornment import AdornedProgram, adorn
from ..datalog.analysis import analyze
from ..datalog.database import Database
from ..datalog.errors import NotApplicableError
from ..datalog.literals import Literal
from ..datalog.rules import Program, Rule
from ..datalog.semantics import answer_against_relation
from ..datalog.terms import Constant, Term
from ..instrumentation import Counters
from .base import Engine, EngineResult, register
from .seminaive import evaluate_seminaive, resume_seminaive


def magic_name(mangled: str) -> str:
    """Name of the magic predicate guarding an adorned predicate."""
    return f"magic_{mangled}"


def rewrite_magic(adorned: AdornedProgram) -> Tuple[Program, Literal, Rule]:
    """Build the magic program, the rewritten query and the seed fact.

    Returns ``(program, rewritten_query, seed_fact)``.  The caller adds the
    seed fact to the database (it depends on the query constants).
    """
    rules: List[Rule] = []
    for adorned_rule in adorned.rules:
        head_name = adorned_rule.head.mangled_name()
        guard = _magic_literal(adorned_rule.head, adorned_rule.head_args)
        body: List[Literal] = []
        if guard is not None:
            body.append(guard)
        body.extend(adorned_rule.prefix)
        if adorned_rule.derived is not None:
            body.append(
                Literal(adorned_rule.derived.mangled_name(), adorned_rule.derived_args)
            )
            # The magic rule: bindings flow from the head guard through the
            # prefix into the derived literal's bound arguments.
            magic_head_args = adorned_rule.bound_derived_terms()
            magic_head = Literal(
                magic_name(adorned_rule.derived.mangled_name()), magic_head_args
            )
            magic_body: List[Literal] = []
            if guard is not None:
                magic_body.append(guard)
            magic_body.extend(adorned_rule.prefix)
            rules.append(Rule(magic_head, magic_body))
        body.extend(adorned_rule.suffix)
        rules.append(Rule(Literal(head_name, adorned_rule.head_args), body))

    query = adorned.query
    rewritten_query = Literal(adorned.query_predicate.mangled_name(), query.args)
    seed_args = [term for term in query.args if isinstance(term, Constant)]
    seed = Rule(Literal(magic_name(adorned.query_predicate.mangled_name()), seed_args))
    return Program(rules + [seed], validate=False), rewritten_query, seed


def _magic_literal(
    adorned_head, head_args: Tuple[Term, ...]
) -> Optional[Literal]:
    bound_terms = [head_args[i] for i in adorned_head.bound_positions]
    return Literal(magic_name(adorned_head.mangled_name()), bound_terms)


@register
class MagicSetsEngine(Engine):
    """Magic-sets rewriting + seminaive evaluation."""

    name = "magic"

    def applicable(self, program: Program, query: Literal) -> bool:
        if not program.is_positive:
            # The rewriting has no story for negation or aggregation: magic
            # predicates guard positive sideways information passing only.
            return False
        try:
            adorn(program, query)
            return True
        except NotApplicableError:
            return False

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        if not program.is_positive:
            raise NotApplicableError(
                "magic sets handles positive programs only; stratified programs "
                "are served by the model engines (naive, seminaive)"
            )
        adorned = adorn(program, query)
        magic_program, rewritten_query, seed = rewrite_magic(adorned)
        database.add_fact(seed.head.predicate, seed.head.constant_values())
        evaluate_seminaive(magic_program, database, counters)
        rows = database.rows(rewritten_query.predicate)
        answers = answer_against_relation(rows, rewritten_query)
        magic_facts = sum(
            database.count(p)
            for p in database.predicates()
            if p.startswith("magic_")
        )
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={
                "adorned_program": adorned,
                "magic_program": magic_program,
                "magic_fact_count": magic_facts,
            },
        )

    # -- demand materialization hooks ---------------------------------------
    #
    # The magic strategy *is* seminaive evaluation of a rewritten program, so
    # a cached query's state is continuable: the entry keeps its rewritten
    # program, its evaluation database (seed + magic + adorned relations) and
    # the rewritten program's analysis, and an EDB delta resumes that
    # fixpoint instead of recomputing it -- newly relevant magic tuples and
    # their guarded consequences are derived by the ordinary delta rounds.

    def _materialize_entry(self, materialization, entry, counters):
        program, query = materialization.program, entry.query
        adorned = adorn(program, query)
        magic_program, rewritten_query, seed = rewrite_magic(adorned)
        overlay = Database.overlay(materialization.database, counters=counters)
        overlay.add_fact(seed.head.predicate, seed.head.constant_values())
        analysis = analyze(magic_program)
        evaluate_seminaive(magic_program, overlay, counters, analysis)
        entry.state = (magic_program, rewritten_query, overlay, analysis)
        return self._entry_result(adorned, entry, counters)

    def _refresh_entry(self, materialization, entry, delta_slice, counters):
        magic_program, rewritten_query, overlay, analysis = entry.state
        inserts: Dict[str, List[tuple]] = {}
        visible_delete = False
        for predicate, row, inserted in delta_slice:
            if predicate not in magic_program.predicates:
                continue
            if inserted:
                inserts.setdefault(predicate, []).append(row)
            else:
                visible_delete = True
        if visible_delete:
            # Deletions are not continuable here: the rewritten program's
            # magic seeds would need over-deletion of their own, and the
            # entry's overlay shares relations copy-on-write with the
            # already-updated base.  Recompute the entry's fixpoint over the
            # updated base instead -- exactly what a fresh query would do.
            return self._materialize_entry(materialization, entry, counters)
        previous, overlay.counters = overlay.counters, counters
        try:
            if inserts:
                resume_seminaive(magic_program, overlay, inserts, counters, analysis)
        finally:
            overlay.counters = previous
        adorned = entry.result.details.get("adorned_program")
        return self._entry_result(adorned, entry, counters)

    def _entry_result(self, adorned, entry, counters):
        magic_program, rewritten_query, overlay, _ = entry.state
        rows = overlay.rows(rewritten_query.predicate)
        answers = answer_against_relation(rows, rewritten_query)
        magic_facts = sum(
            overlay.count(p) for p in overlay.predicates() if p.startswith("magic_")
        )
        return EngineResult(
            answers=answers,
            engine=self.name,
            counters=counters,
            iterations=counters.iterations,
            details={
                "adorned_program": adorned,
                "magic_program": magic_program,
                "magic_fact_count": magic_facts,
            },
        )
