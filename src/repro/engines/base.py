"""Common interface for the baseline evaluation strategies.

Every engine answers a query against a program and a database and reports
machine-independent work counters, so the comparison benchmarks of the paper
(Section 3, the same-generation table) can be reproduced by measuring
``Counters.total_work`` as the database grows.

The engines are deliberately written in the style the original papers
describe them, *not* optimised beyond that: duplication of work (naive
evaluation refiring rules, Henschen-Naqvi retraversing paths) is part of what
the comparison measures.

The materialize / answer / resume contract
------------------------------------------

One-shot evaluation (:meth:`Engine.answer`) re-runs the strategy per query.
For the repeated-traffic serving model of the session layer
(:mod:`repro.session`), every engine additionally implements:

``materialize(program, database) -> Materialization``
    Build the strategy's reusable state over the current extensional
    database.  The materialization records the database :attr:`~repro
    .datalog.database.Database.version` it was built at.  Two shapes exist:

    * **model materializations** (naive, seminaive) hold the full least
      model; :meth:`Materialization.answer` is a relation lookup for *any*
      query over the program;
    * **demand materializations** (magic, counting, reverse counting,
      Henschen-Naqvi, graph traversal, top-down) hold a per-query cache over
      a shared copy-on-write base: the first ``answer`` for a query shape
      runs the strategy, repeats are lookups.  Queries differing only by
      variable names share one cache entry.

``Materialization.answer(query) -> EngineResult``
    Answer from the cached state; no fixpoint is re-run on a cache hit.
    Cache hits report empty counters (a lookup retrieves nothing new) and
    set ``details["cached"]``.

``resume(materialization, edb_delta) -> Materialization``
    Bring the materialization up to date after an EDB delta.  ``edb_delta``
    is either a plain ``{predicate: [row, ...]}`` mapping of insertions (the
    historical contract) or a signed :class:`~repro.datalog.database.Delta`
    carrying insertions *and* deletions -- the shape :meth:`~repro.datalog
    .database.Database.delta_since` returns.  Model materializations
    maintain the model in place: insertions continue the fixpoint
    seminaively from the inserted facts (seminaive evaluation is already a
    delta computation, so the continuation is the same machinery seeded
    with the EDB delta; this is the resume path even for the naive engine,
    whose from-scratch re-run is exactly what resume exists to avoid) and
    deletions run delete-rederive (DRed) maintenance -- overdelete every
    tuple with a derivation through a deleted fact, then rederive the
    survivors; both live in :func:`repro.engines.runtime.resume_stratified`.
    The magic engine continues each cached query's rewritten-program
    fixpoint for insertions and recomputes the entry when a visible
    deletion arrives (over-deleted magic seeds are not continuable).  The
    set-at-a-time traversal strategies (counting, Henschen-Naqvi, graph)
    keep no arc-set state that a later mutation could patch, so their
    cached queries are refreshed by re-running the traversal over the
    updated base -- lazily, on the next ``answer``, and only when the delta
    (of either sign) touches a predicate the program can see.  After
    ``resume``, answers equal a from-scratch materialization over the
    updated database (asserted per engine and workload family by
    ``tests/engines/test_incremental_differential.py``,
    ``tests/engines/test_deletion_differential.py`` and, for negation and
    aggregation, ``tests/engines/test_stratified_differential.py``).

Stratified programs (negation, aggregation)
-------------------------------------------

The model engines (naive, seminaive) accept any *stratifiable* program:
``materialize`` computes the full stratified model (one monotone fixpoint
per stratum, bottom-up -- see :mod:`repro.engines.runtime`), ``answer``
remains a relation lookup over it, and a program with negation or
aggregation through recursion raises :class:`~repro.datalog.errors
.StratificationError` instead of materializing anything.  ``resume`` on a
delta is **non-monotone** for stratified programs -- an inserted fact below
a ``not`` can retract conclusions above it -- so instead of continuing the
fixpoint the runtime *restarts evaluation at the lowest stratum whose
inputs the delta touches*, reusing the cached models of every lower stratum
copy-on-write; positive programs are the 1-stratum special case for which
this degenerates to the pure seminaive continuation.  The demand-driven
strategies do not evaluate stratified programs themselves: their
``applicable`` checks reject non-positive programs (the graph engine's
planner falls back to the stratified bottom-up model), and the session
layer serves such programs from the seminaive model materialization.
Deletions restart the affected strata the same way -- a deleted fact below
a ``not`` is as non-monotone as an inserted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Type

from ..datalog.database import Database, Delta, Row, normalize_row
from ..datalog.errors import NotApplicableError
from ..datalog.literals import Literal
from ..datalog.rules import Program
from ..datalog.semantics import answer_against_relation
from ..datalog.terms import Constant
from ..instrumentation import Counters


@dataclass
class EngineResult:
    """The outcome of one engine run.

    Attributes
    ----------
    answers:
        Tuples over the query's distinct variables, in order of first
        occurrence (the convention of
        :func:`repro.datalog.semantics.answer_query`).
    engine:
        The engine's registry name.
    counters:
        Work counters accumulated while answering.
    iterations:
        Number of outer-loop rounds, when the engine is iterative.
    details:
        Engine-specific extras (e.g. the rewritten magic program).
    """

    answers: Set[Tuple[object, ...]]
    engine: str
    counters: Counters
    iterations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def batch_stats(self):
        """Columnar batch telemetry accumulated while answering.

        The :class:`~repro.instrumentation.BatchStats` carried by
        :attr:`counters` -- batches committed, rows in/out, row-loop
        fallbacks, and per-plan-node counts.  All zeros unless the run
        executed under ``set_execution_mode("columnar")``.
        """
        return self.counters.batch

    def values(self) -> Set[object]:
        """Bare values for single-variable queries.

        Raises :class:`ValueError` when any answer tuple is not unary --
        silently projecting the first component of a wider tuple (or
        dropping the empty tuple of a ground query) would hand back a
        misleading partial answer set.  Use :attr:`answers` for those.
        """
        for answer in self.answers:
            if len(answer) != 1:
                raise ValueError(
                    f"values() needs unary answer tuples, got arity {len(answer)}; "
                    "use .answers for ground or multi-variable queries"
                )
        return {t[0] for t in self.answers}


def _canonical_query_key(query: Literal) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
    """A query cache key invariant under variable renaming.

    Answers are tuples over the query's distinct variables in order of first
    occurrence, so two queries differing only in variable names have
    identical answer sets and may share one materialization entry.
    """
    shape: List[Tuple[str, object]] = []
    var_index: Dict[object, int] = {}
    for term in query.args:
        if isinstance(term, Constant):
            shape.append(("c", term.value))
        else:
            shape.append(("v", var_index.setdefault(term, len(var_index))))
    return (query.predicate, tuple(shape))


def _coerce_delta(program: Program, edb_delta: object) -> Delta:
    """Coerce a resume delta to :class:`Delta`, rejecting derived predicates."""
    delta = Delta.coerce(edb_delta)
    derived = program.derived_predicates
    for predicate in delta.predicates():
        if predicate in derived:
            raise ValueError(
                f"cannot resume with facts for derived predicate {predicate!r}"
            )
    return delta


class Materialization:
    """Cached evaluation state answering queries without a from-scratch run.

    See the module docstring for the materialize / answer / resume contract.
    ``counters`` accumulates the work of building the materialization and of
    every resume applied to it; per-call counters can be passed to
    :meth:`answer` / :meth:`resume` to measure one operation in isolation.
    """

    kind = "abstract"

    def __init__(
        self,
        engine: "Engine",
        program: Program,
        database: Database,
        basis_version: int,
        counters: Counters,
    ):
        self.engine = engine
        self.engine_name = engine.name
        self.program = program
        self.database = database
        self.basis_version = basis_version
        self.counters = counters
        self.iterations = counters.iterations
        self.details: Dict[str, object] = {}

    def answer(self, query: Literal, counters: Optional[Counters] = None) -> EngineResult:
        raise NotImplementedError

    def resume(
        self,
        edb_delta,
        counters: Optional[Counters] = None,
        version: Optional[int] = None,
    ) -> "Materialization":
        """Apply a (possibly signed) EDB delta; see :meth:`Engine.resume`."""
        raise NotImplementedError

    def _effective_size(self, delta: Delta) -> int:
        """How many delta rows would mutate the base: new inserts + present deletes.

        Computed *before* the delta is applied, with uncharged O(1)
        membership probes per row (never a whole-relation snapshot -- the
        streaming resume path calls this once per batch).  Rows are
        normalized exactly as :meth:`Database.add_fact` normalizes them, so
        ``Constant``-wrapped duplicates are recognised as duplicates, and
        repeats *within* the delta count once -- overshooting would move the
        basis version past the source database and make the next
        ``delta_since`` raise.
        """
        applied = 0
        relations = self.database.relations
        for predicate, rows in delta.inserts.items():
            relation = relations.get(predicate)
            new_rows: Set[Row] = set()
            for row in rows:
                row = normalize_row(row)
                if (relation is None or row not in relation) and row not in new_rows:
                    new_rows.add(row)
                    applied += 1
        for predicate, rows in delta.deletes.items():
            relation = relations.get(predicate)
            if relation is None:
                continue
            gone_rows: Set[Row] = set()
            for row in rows:
                row = normalize_row(row)
                if row in relation and row not in gone_rows:
                    gone_rows.add(row)
                    applied += 1
        return applied

    def _advance(self, version: Optional[int], applied: int) -> None:
        """Move the basis version after a resume.

        Without an explicit ``version`` the basis advances by the number of
        rows that *effectively mutated* the materialization's database --
        never by the raw delta length: rows already visible (duplicate
        inserts) or already gone (absent deletes, or mutations that leaked
        through copy-on-write sharing before the resume) do not advance the
        source database's version either, and overshooting it would make a
        later ``delta_since(basis_version)`` raise.  Advancing too little is
        safe -- re-applying a delta row is idempotent.
        """
        if version is not None:
            self.basis_version = version
        else:
            self.basis_version += applied


class ModelMaterialization(Materialization):
    """The full least model, materialized once; answering is a lookup.

    Used by the bottom-up model engines (naive, seminaive).  ``database``
    holds the extensional relations, the program facts and every derived
    tuple; :meth:`resume` continues the fixpoint seminaively from the
    inserted facts.
    """

    kind = "model"

    def __init__(self, engine, program, database, basis_version, counters, analysis=None):
        super().__init__(engine, program, database, basis_version, counters)
        self._analysis = analysis

    def answer(self, query: Literal, counters: Optional[Counters] = None) -> EngineResult:
        answers = answer_against_relation(self.database.rows(query.predicate), query)
        return EngineResult(
            answers=answers,
            engine=self.engine_name,
            counters=counters if counters is not None else Counters(),
            iterations=self.iterations,
            details={
                "materialized": True,
                "derived_size": self.database.count(query.predicate),
            },
        )

    def resume(self, edb_delta, counters=None, version=None):
        from .runtime import resume_stratified

        delta = _coerce_delta(self.program, edb_delta)
        applied = self._effective_size(delta)
        target = counters if counters is not None else self.counters
        previous, self.database.counters = self.database.counters, target
        try:
            # Positive programs are maintained in place (DRed for the
            # deletions, then the seminaive continuation for the
            # insertions); stratified programs hand back a rebuilt database
            # with the affected strata recomputed, which simply replaces
            # this materialization's model.
            self.database, _ = resume_stratified(
                self.program, self.database, delta, target, self._analysis
            )
        finally:
            self.database.counters = previous
        if counters is not None and counters is not self.counters:
            self.counters = self.counters + counters
        self.iterations = self.counters.iterations
        self._advance(version, applied)
        return self


class _DemandEntry:
    """One cached query of a :class:`DemandMaterialization`."""

    __slots__ = ("query", "result", "synced", "state")

    def __init__(self, query: Literal, result: EngineResult, synced: int):
        self.query = query
        self.result = result
        self.synced = synced
        self.state: object = None


class DemandMaterialization(Materialization):
    """A per-query answer cache over a shared copy-on-write base.

    Used by the demand-driven strategies (magic, counting, reverse counting,
    Henschen-Naqvi, graph traversal, top-down), whose work is driven by the
    query constants.  ``database`` holds the extensional relations plus the
    program facts; each cached query computed over it gets its own overlay.
    :meth:`resume` applies the (possibly signed) delta to the base
    immediately and logs it; cache entries are brought up to date lazily on
    their next :meth:`answer` -- the magic engine by continuing the entry's
    rewritten-program fixpoint (insertions) or recomputing it (deletions),
    the traversal engines by re-running the traversal -- and only when the
    delta touches a predicate the entry can see.
    """

    kind = "demand"

    def __init__(self, engine, program, database, basis_version, counters):
        super().__init__(engine, program, database, basis_version, counters)
        self._entries: Dict[object, _DemandEntry] = {}
        # Pending signed delta rows -- (predicate, row, inserted) -- not yet
        # seen by every entry.  ``entry.synced`` holds *absolute* log
        # positions; the list itself is pruned to the slowest entry's
        # position, with ``_log_offset`` recording how many rows were
        # dropped, so a long-lived session's memory is bounded by the
        # unsynced window, not by the total mutation history.
        self._log: List[Tuple[str, Row, bool]] = []
        self._log_offset = 0

    def _log_end(self) -> int:
        return self._log_offset + len(self._log)

    def answer(self, query: Literal, counters: Optional[Counters] = None) -> EngineResult:
        key = _canonical_query_key(query)
        entry = self._entries.get(key)
        if entry is None:
            call_counters = counters if counters is not None else Counters()
            entry = _DemandEntry(query, None, self._log_end())
            entry.result = self.engine._materialize_entry(self, entry, call_counters)
            self._entries[key] = entry
            return entry.result
        if entry.synced < self._log_end():
            delta_slice = self._log[entry.synced - self._log_offset :]
            entry.synced = self._log_end()
            self._prune_log()
            if self._delta_visible_to(entry, delta_slice):
                call_counters = counters if counters is not None else Counters()
                entry.result = self.engine._refresh_entry(
                    self, entry, delta_slice, call_counters
                )
                return entry.result
        cached = entry.result
        return EngineResult(
            answers=cached.answers,
            engine=cached.engine,
            counters=counters if counters is not None else Counters(),
            iterations=cached.iterations,
            details={**cached.details, "cached": True},
        )

    def resume(self, edb_delta, counters=None, version=None):
        delta = _coerce_delta(self.program, edb_delta)
        applied = 0
        pairs: List[Tuple[str, Row, bool]] = []
        for predicate, rows in delta.deletes.items():
            for row in rows:
                if self.database.remove_fact(predicate, row):
                    applied += 1
                pairs.append((predicate, row, False))
        for predicate, rows in delta.inserts.items():
            for row in rows:
                if self.database.add_fact(predicate, row):
                    applied += 1
                pairs.append((predicate, row, True))
        if self._entries:
            self._log.extend(pairs)
        # without entries there is nothing to refresh later: new entries
        # always compute over the already-updated base
        self._advance(version, applied)
        return self

    def _prune_log(self) -> None:
        slowest = min(entry.synced for entry in self._entries.values())
        drop = slowest - self._log_offset
        if drop > 0:
            del self._log[:drop]
            self._log_offset = slowest

    def _delta_visible_to(
        self, entry: _DemandEntry, delta_slice: List[Tuple[str, Row, bool]]
    ) -> bool:
        touched = {predicate for predicate, _, _ in delta_slice}
        if entry.query.predicate in self.program.derived_predicates:
            return bool(touched & self.program.predicates)
        return entry.query.predicate in touched


class Engine:
    """Base class: an evaluation strategy with a registry name."""

    name: str = "abstract"

    def answer(
        self,
        program: Program,
        query: Literal,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> EngineResult:
        """Answer ``query`` against ``program`` (+ optional external database).

        Subclasses implement :meth:`_run`; this wrapper merges the program's
        own facts with the external database and wires up the counters.  The
        merge is a copy-on-write overlay (:meth:`Database.overlay`) of a
        combined snapshot memoized per ``(program, database version)`` by the
        session layer (:func:`repro.session.facts.combined_database`): the
        program's facts are interned and merged once per database version
        instead of once per query, the caller's relations -- and their
        already-built hash indexes -- are shared read-only, and only a
        relation the engine actually writes to is cloned.  The caller's
        database is never mutated.
        """
        counters = counters if counters is not None else Counters()
        from ..datalog.diagnostics import ensure_valid
        from ..datalog.transform import get_program_opt, optimize
        from ..session.facts import combined_database

        ensure_valid(program)
        combined = combined_database(program, database, counters)
        # With the combined EDB in hand the abstract-interpretation layer
        # can run (memoized per program instance and database version); its
        # DL7xx findings land on the planner event ring for ``explain()``.
        ensure_valid(program, combined)
        if get_program_opt() == "on":
            rewritten = optimize(
                program, queries=(query.predicate,), database=combined
            )
            optimized = rewritten.program
            if (
                rewritten.report.changed
                and query.predicate in optimized.predicates
                and self.applicable(optimized, query)
            ):
                outcome = self._run(optimized, query, combined, counters)
                outcome.details["program_opt"] = rewritten.report.format()
                return outcome
        return self._run(program, query, combined, counters)

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        raise NotImplementedError

    def applicable(self, program: Program, query: Literal) -> bool:
        """Whether the engine's restrictions are met (default: always)."""
        return True

    # -- the materialize / answer / resume contract -------------------------

    def materialize(
        self,
        program: Program,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> Materialization:
        """Build reusable evaluation state (see the module docstring).

        The default is a :class:`DemandMaterialization` -- right for every
        strategy whose work is driven by the query constants.  The model
        engines (naive, seminaive) override this with a full least-model
        materialization.
        """
        counters = counters if counters is not None else Counters()
        combined, basis_version = self._materialization_base(program, database, counters)
        return DemandMaterialization(self, program, combined, basis_version, counters)

    def resume(
        self,
        materialization: Materialization,
        edb_delta,
        counters: Optional[Counters] = None,
        version: Optional[int] = None,
    ) -> Materialization:
        """Bring ``materialization`` up to date after an EDB delta.

        ``edb_delta`` is either a plain ``{predicate: rows}`` mapping of
        insertions or a signed :class:`~repro.datalog.database.Delta`
        carrying insertions and deletions (the shape
        :meth:`Database.delta_since` returns).  ``version`` optionally pins
        the database version the materialization now corresponds to; without
        it the basis version advances by the number of effective delta rows.
        Returns the same (updated) materialization.
        """
        if materialization.engine_name != self.name:
            raise ValueError(
                f"materialization was built by {materialization.engine_name!r}, "
                f"cannot resume with {self.name!r}"
            )
        return materialization.resume(edb_delta, counters=counters, version=version)

    def _materialization_base(
        self,
        program: Program,
        database: Optional[Database],
        counters: Counters,
    ) -> Tuple[Database, int]:
        """The combined (EDB + program facts) overlay and its basis version."""
        from ..session.facts import combined_database

        combined = combined_database(program, database, counters)
        return combined, database.version if database is not None else 0

    def _materialize_entry(
        self,
        materialization: DemandMaterialization,
        entry: _DemandEntry,
        counters: Counters,
    ) -> EngineResult:
        """Compute one cached query of a demand materialization.

        The default runs the strategy (:meth:`_run`) over a fresh overlay of
        the materialization's base.  Engines with continuable per-query state
        (magic) override this to stash that state on ``entry.state``.
        """
        overlay = Database.overlay(materialization.database, counters=counters)
        return self._run(materialization.program, entry.query, overlay, counters)

    def _refresh_entry(
        self,
        materialization: DemandMaterialization,
        entry: _DemandEntry,
        delta_slice: List[Tuple[str, Row, bool]],
        counters: Counters,
    ) -> EngineResult:
        """Bring one cached query up to date after a resumed delta.

        The default re-runs the strategy over the updated base (the honest
        move for the set-at-a-time traversals, which keep no continuable
        state); the magic engine overrides this with a seminaive continuation
        of the entry's rewritten-program fixpoint for insert-only slices.
        """
        return self._materialize_entry(materialization, entry, counters)


_REGISTRY: Dict[str, Type[Engine]] = {}


def register(engine_class: Type[Engine]) -> Type[Engine]:
    """Class decorator adding an engine to the registry."""
    _REGISTRY[engine_class.name] = engine_class
    return engine_class


def available_engines() -> Dict[str, Type[Engine]]:
    """Registry name -> engine class, for all registered engines."""
    return dict(_REGISTRY)


def get_engine(name: str) -> Engine:
    """Instantiate a registered engine by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise NotApplicableError(
            f"unknown engine {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
