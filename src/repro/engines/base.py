"""Common interface for the baseline evaluation strategies.

Every engine answers a query against a program and a database and reports
machine-independent work counters, so the comparison benchmarks of the paper
(Section 3, the same-generation table) can be reproduced by measuring
``Counters.total_work`` as the database grows.

The engines are deliberately written in the style the original papers
describe them, *not* optimised beyond that: duplication of work (naive
evaluation refiring rules, Henschen-Naqvi retraversing paths) is part of what
the comparison measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple, Type

from ..datalog.database import Database
from ..datalog.errors import NotApplicableError
from ..datalog.literals import Literal
from ..datalog.rules import Program
from ..instrumentation import Counters


@dataclass
class EngineResult:
    """The outcome of one engine run.

    Attributes
    ----------
    answers:
        Tuples over the query's distinct variables, in order of first
        occurrence (the convention of
        :func:`repro.datalog.semantics.answer_query`).
    engine:
        The engine's registry name.
    counters:
        Work counters accumulated while answering.
    iterations:
        Number of outer-loop rounds, when the engine is iterative.
    details:
        Engine-specific extras (e.g. the rewritten magic program).
    """

    answers: Set[Tuple[object, ...]]
    engine: str
    counters: Counters
    iterations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    def values(self) -> Set[object]:
        """Bare values for single-variable queries."""
        return {t[0] for t in self.answers if len(t) == 1}


class Engine:
    """Base class: an evaluation strategy with a registry name."""

    name: str = "abstract"

    def answer(
        self,
        program: Program,
        query: Literal,
        database: Optional[Database] = None,
        counters: Optional[Counters] = None,
    ) -> EngineResult:
        """Answer ``query`` against ``program`` (+ optional external database).

        Subclasses implement :meth:`_run`; this wrapper merges the program's
        own facts with the external database and wires up the counters.  The
        merge is a copy-on-write overlay (:meth:`Database.overlay`): the
        caller's relations -- and their already-built hash indexes -- are
        shared read-only, and only a relation the engine actually writes to
        is cloned, so repeated queries against one extensional database do
        not pay a per-query row-by-row rebuild of the whole database.  The
        caller's database is never mutated.
        """
        counters = counters if counters is not None else Counters()
        if database is not None:
            combined = Database.overlay(database, counters=counters)
        else:
            combined = Database(counters=counters)
        combined.load_program_facts(program)
        return self._run(program, query, combined, counters)

    def _run(
        self,
        program: Program,
        query: Literal,
        database: Database,
        counters: Counters,
    ) -> EngineResult:
        raise NotImplementedError

    def applicable(self, program: Program, query: Literal) -> bool:
        """Whether the engine's restrictions are met (default: always)."""
        return True


_REGISTRY: Dict[str, Type[Engine]] = {}


def register(engine_class: Type[Engine]) -> Type[Engine]:
    """Class decorator adding an engine to the registry."""
    _REGISTRY[engine_class.name] = engine_class
    return engine_class


def available_engines() -> Dict[str, Type[Engine]]:
    """Registry name -> engine class, for all registered engines."""
    return dict(_REGISTRY)


def get_engine(name: str) -> Engine:
    """Instantiate a registered engine by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise NotApplicableError(
            f"unknown engine {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
