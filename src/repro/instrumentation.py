"""Machine-independent work counters shared by every evaluation strategy.

The paper's evaluation section compares strategies by *asymptotic work*, not
wall-clock time: the number of potentially relevant facts consulted, the
amount of duplicated rule firing, and the number of nodes an algorithm
materialises (Section 1 lists exactly these three factors).  To reproduce the
comparison table in a machine-independent way, every engine in this package
threads a :class:`Counters` object through its evaluation and bumps the
relevant counters.  Benchmarks then report and fit these counts over a
parameter sweep, alongside the pytest-benchmark wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class BatchStats:
    """Columnar batch-execution telemetry (observability, not work counters).

    The columnar executor (:func:`repro.datalog.plans.set_execution_mode`
    with ``"columnar"``) processes whole binding batches per scan step.
    These statistics record how much of the hot path actually ran batched --
    batches executed, rows entering and leaving the pipeline, and how often
    a plan fell back to the row-at-a-time loop -- without participating in
    the paper's work-counter model: they are *excluded* from
    :meth:`Counters.as_dict` (and from dataclass equality), so counter pins
    and differential comparisons see bit-identical counters whichever
    executor produced them.

    Attributes
    ----------
    batches:
        Number of batch plan executions committed.
    rows_in:
        Rows entering the pipelines (the depth-0 scan sizes).
    rows_out:
        Head rows leaving committed batch executions.
    fallbacks:
        Plan executions that ran the row-at-a-time loop instead -- either
        statically (a shape the batch executor does not handle) or because
        the optimistic batch of a self-feeding plan was discarded by the
        probe-overlap verification.
    shards:
        Delta shards executed by worker processes (``repro.parallel``); zero
        under sequential evaluation.
    merge_seconds:
        Wall-clock seconds the parent spent decoding and merging shard
        results (the sequential portion of the sharded rounds).
    nodes:
        Per-plan-node counters: node key -> ``[batches, rows_in, rows_out]``
        where the key names the head predicate, step index and scanned
        predicate of one :class:`~repro.datalog.plans.ScanStep`.
    """

    batches: int = 0
    rows_in: int = 0
    rows_out: int = 0
    fallbacks: int = 0
    shards: int = 0
    merge_seconds: float = 0.0
    nodes: Dict[str, List[int]] = field(default_factory=dict)

    def node(self, key: str) -> List[int]:
        """The mutable ``[batches, rows_in, rows_out]`` cell for one node."""
        cell = self.nodes.get(key)
        if cell is None:
            cell = self.nodes[key] = [0, 0, 0]
        return cell

    def merge(self, other: "BatchStats") -> None:
        """Fold another stats bundle into this one in place."""
        self.batches += other.batches
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out
        self.fallbacks += other.fallbacks
        self.shards += other.shards
        self.merge_seconds += other.merge_seconds
        for key, cell in other.nodes.items():
            mine = self.node(key)
            mine[0] += cell[0]
            mine[1] += cell[1]
            mine[2] += cell[2]

    def reset(self) -> None:
        """Zero every statistic in place."""
        self.batches = 0
        self.rows_in = 0
        self.rows_out = 0
        self.fallbacks = 0
        self.shards = 0
        self.merge_seconds = 0.0
        self.nodes.clear()

    def as_dict(self) -> Dict[str, object]:
        """A plain-dict view for reports and benchmark JSON."""
        return {
            "batches": self.batches,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "fallbacks": self.fallbacks,
            "shards": self.shards,
            "merge_seconds": self.merge_seconds,
            "nodes": {
                key: {"batches": cell[0], "rows_in": cell[1], "rows_out": cell[2]}
                for key, cell in sorted(self.nodes.items())
            },
        }


@dataclass
class Counters:
    """Mutable bundle of work counters.

    Attributes
    ----------
    fact_retrievals:
        Number of tuples fetched from the extensional database (the paper's
        "set of potentially relevant facts" is the set of *distinct* facts,
        but the retrieval count also exposes duplicated work).
    distinct_facts:
        Number of distinct EDB tuples touched at least once.
    rule_firings:
        Number of successful rule instantiations performed by bottom-up
        engines (a firing that only rederives an existing fact still counts,
        which is precisely the "duplication of work" factor).
    derived_tuples:
        Number of distinct derived tuples produced.
    nodes_generated:
        Number of graph nodes materialised by graph-based methods (the
        (state, constant) pairs of the paper's algorithm, or the magic/count
        set entries of the rewriting methods).
    iterations:
        Number of outer-loop iterations (seminaive rounds, or iterations of
        the main loop of the paper's algorithm).
    """

    fact_retrievals: int = 0
    distinct_facts: int = 0
    rule_firings: int = 0
    derived_tuples: int = 0
    nodes_generated: int = 0
    iterations: int = 0
    extras: Dict[str, int] = field(default_factory=dict)
    # Columnar batch telemetry: deliberately outside the work-counter model
    # (no as_dict entry, no equality participation) -- see BatchStats.
    batch: BatchStats = field(default_factory=BatchStats, compare=False, repr=False)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment an ad-hoc named counter stored in :attr:`extras`."""
        self.extras[name] = self.extras.get(name, 0) + amount

    def total_work(self) -> int:
        """A single scalar used by the comparison benchmarks.

        Defined as facts retrieved + rule firings + nodes generated.  The
        absolute value is meaningless; its growth rate as the database grows
        is what the benchmarks fit (n vs n^2).
        """
        return self.fact_retrievals + self.rule_firings + self.nodes_generated

    def as_dict(self) -> Dict[str, int]:
        """A flat dictionary view (extras folded in), for reporting."""
        data = {
            "fact_retrievals": self.fact_retrievals,
            "distinct_facts": self.distinct_facts,
            "rule_firings": self.rule_firings,
            "derived_tuples": self.derived_tuples,
            "nodes_generated": self.nodes_generated,
            "iterations": self.iterations,
            "total_work": self.total_work(),
        }
        data.update(self.extras)
        return data

    def reset(self) -> None:
        """Zero every counter in place."""
        self.fact_retrievals = 0
        self.distinct_facts = 0
        self.rule_firings = 0
        self.derived_tuples = 0
        self.nodes_generated = 0
        self.iterations = 0
        self.extras.clear()
        self.batch.reset()

    def absorb(self, other: "Counters") -> None:
        """Fold ``other`` into this bundle in place.

        Every counter is a commutative sum, so folding per-component bundles
        back into the caller's bundle in evaluation order yields exactly the
        totals sequential evaluation would have produced -- this is what the
        parallel stratum scheduler (:mod:`repro.engines.runtime`) relies on
        when independent SCCs of a stratum charge their own bundles.
        """
        self.fact_retrievals += other.fact_retrievals
        self.distinct_facts += other.distinct_facts
        self.rule_firings += other.rule_firings
        self.derived_tuples += other.derived_tuples
        self.nodes_generated += other.nodes_generated
        self.iterations += other.iterations
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0) + value
        self.batch.merge(other.batch)

    def __add__(self, other: "Counters") -> "Counters":
        merged = Counters(
            fact_retrievals=self.fact_retrievals + other.fact_retrievals,
            distinct_facts=self.distinct_facts + other.distinct_facts,
            rule_firings=self.rule_firings + other.rule_firings,
            derived_tuples=self.derived_tuples + other.derived_tuples,
            nodes_generated=self.nodes_generated + other.nodes_generated,
            iterations=self.iterations + other.iterations,
        )
        for extras in (self.extras, other.extras):
            for key, value in extras.items():
                merged.extras[key] = merged.extras.get(key, 0) + value
        merged.batch.merge(self.batch)
        merged.batch.merge(other.batch)
        return merged
