"""``python -m repro.lint`` -- the command-line front end of the linter.

Runs the program-level static analysis of
:mod:`repro.datalog.diagnostics` over ``.dl`` files and prints the findings
as compiler-style text or as JSON::

    python -m repro.lint workloads examples            # discover *.dl
    python -m repro.lint --format json program.dl
    python -m repro.lint --strict workloads            # warnings also fail
    python -m repro.lint --codes                       # the error-code table
    python -m repro.lint --jobs 4 workloads            # lint files in parallel
    python -m repro.lint --analyze workloads           # + DL7xx abstract checks
                                                       #   and inferred signatures

``--jobs N`` lints files on ``N`` forked workers (the same pool the
parallel fixpoint runs on, :mod:`repro.parallel`).  Results are collected
in file order, so text and JSON output are byte-identical to a
sequential run; when fork is unavailable the flag silently degrades to
sequential linting.

Directories are searched recursively for ``*.dl`` files; explicit file
arguments are linted regardless of extension.  A file may declare the
queries it is meant to serve with directive comments::

    % query: tc(a, X)

which become the roots of the reachability check (``DL402``) and the
subjects of the binding-mode analysis (``DL501``).  A ``% lint: known p q``
directive names external EDB relations so they are not reported as
undefined (``DL401``).

Exit status: ``0`` when no failing diagnostic was found, ``1`` otherwise,
``2`` on usage errors.  Errors always fail; warnings fail under
``--strict``; hints never fail.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from . import parallel as _parallel
from .datalog.diagnostics import CODES, Diagnostic, Severity, lint_source
from .datalog.errors import DatalogSyntaxError
from .datalog.parser import parse_query
from .datalog.spans import Span

#: ``% query: tc(a, X)`` -- declare a query the file is meant to serve.
_QUERY_DIRECTIVE = re.compile(r"^\s*%\s*query:\s*(?P<query>.+?)\s*$", re.MULTILINE)
#: ``% lint: known edge node`` -- declare external EDB relation names.
_KNOWN_DIRECTIVE = re.compile(r"^\s*%\s*lint:\s*known\s+(?P<names>.+?)\s*$", re.MULTILINE)


def discover(paths: Sequence[str]) -> List[Path]:
    """The files to lint: explicit files plus ``*.dl`` under directories."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.dl")))
        else:
            found.append(path)
    # de-duplicate while keeping order (a file can be both explicit and
    # discovered through its directory)
    seen = set()
    unique: List[Path] = []
    for path in found:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_file(
    path: Path, analyze: bool = False
) -> Tuple[List[Diagnostic], Optional[str]]:
    """Lint one file; returns (diagnostics, fatal-read-error message)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [], f"cannot read {path}: {exc.strerror or exc}"
    queries = []
    for match in _QUERY_DIRECTIVE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        column = match.start("query") - (text.rfind("\n", 0, match.start("query")) + 1) + 1
        try:
            literal = parse_query(match.group("query"))
        except DatalogSyntaxError as exc:
            return [
                Diagnostic(
                    code=exc.code,
                    severity=Severity.ERROR,
                    message=f"bad query directive: {exc.bare_message}",
                    span=Span.point(line, column),
                )
            ], None
        # Anchor query diagnostics (DL501) at the directive's file position
        # instead of the directive-relative parse span.
        literal.span = Span.point(line, column)
        queries.append(literal)
    known: List[str] = []
    for names in _KNOWN_DIRECTIVE.findall(text):
        known.extend(names.split())
    return (
        lint_source(text, queries=queries, known_predicates=known, analyze=analyze),
        None,
    )


def inferred_signatures(path: Path) -> List[str]:
    """The abstract interpreter's per-predicate signatures for one file.

    Open-world, like the lint checks: predicates named by ``% lint: known``
    directives are assumed non-empty with unknown domains.  Unreadable or
    unparsable files yield no signatures (the lint pass reports them).
    """
    from .datalog.abstract import AbstractAnalysis
    from .datalog.parser import parse_rules
    from .datalog.rules import Program

    try:
        text = path.read_text(encoding="utf-8")
        rules = parse_rules(text)
        program = Program(rules, validate=False)
    except Exception:
        return []
    known: List[str] = []
    for names in _KNOWN_DIRECTIVE.findall(text):
        known.extend(names.split())
    try:
        return AbstractAnalysis.of(program, known=known).signature_report()
    except Exception:
        return []


def _fails(diagnostic: Diagnostic, strict: bool) -> bool:
    if diagnostic.severity is Severity.ERROR:
        return True
    return strict and diagnostic.severity is Severity.WARNING


def _lint_payload(spec):
    """One file's report in picklable form: ``(fatal, items, signatures)``.

    ``spec`` is the path string, or ``(path, analyze)``.  ``items`` carries,
    per diagnostic, everything the reporting loop needs -- severity value,
    pre-formatted text line, and the JSON dict -- so the parent process
    never has to reconstruct Diagnostic objects from a worker's result.
    ``signatures`` holds the inferred predicate signatures under
    ``--analyze`` (empty otherwise).
    """
    if isinstance(spec, str):
        path_str, analyze = spec, False
    else:
        path_str, analyze = spec
    path = Path(path_str)
    diagnostics, fatal = lint_file(path, analyze=analyze)
    if fatal is not None:
        return fatal, [], []
    signatures = inferred_signatures(path) if analyze else []
    return (
        None,
        [(d.severity.value, d.format(path_str), d.to_dict()) for d in diagnostics],
        signatures,
    )


_parallel.register_task("lint_file", _lint_payload)


def _collect(files: Sequence[Path], jobs: int, analyze: bool = False):
    """All per-file payloads, in file order, sequentially or on a pool."""
    specs = [(str(path), analyze) for path in files]
    workers = min(jobs, len(specs))
    if workers > 1 and _parallel.fork_available():
        try:
            with _parallel.WorkerPool(workers) as pool:
                return pool.run([("lint_file", spec) for spec in specs])
        except _parallel.WorkerError:
            pass  # fall through to the sequential path
    return [_lint_payload(spec) for spec in specs]


def _print_codes() -> None:
    width = max(len(code) for code in CODES)
    for code, (severity, summary) in sorted(CODES.items()):
        print(f"{code:<{width}}  {severity.value:<7}  {summary}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analysis for Datalog programs (.dl files).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files to lint, or directories to search for *.dl files",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (errors always fail; hints never do)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run the abstract-interpretation DL7xx checks and print each "
        "file's inferred predicate signatures",
    )
    parser.add_argument(
        "--codes",
        action="store_true",
        help="print the error-code table and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files on N parallel workers (default: 1; output is "
        "identical to a sequential run)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer")

    if args.codes:
        _print_codes()
        return 0
    if not args.paths:
        parser.error("no files or directories given (or use --codes)")

    files = discover(args.paths)
    failed = False
    reports = []
    total = {"error": 0, "warning": 0, "hint": 0}
    for path, (fatal, items, signatures) in zip(
        files, _collect(files, args.jobs, analyze=args.analyze)
    ):
        if fatal is not None:
            failed = True
            if args.format == "text":
                print(f"{path}: error: {fatal}", file=sys.stderr)
            reports.append({"path": str(path), "error": fatal, "diagnostics": []})
            continue
        for severity, line, _payload in items:
            total[severity] += 1
            if severity == "error" or (args.strict and severity == "warning"):
                failed = True
            if args.format == "text":
                print(line)
        if args.analyze and args.format == "text" and signatures:
            print(f"{path}: inferred signatures:")
            for signature in signatures:
                print(f"  {signature}")
        report = {
            "path": str(path),
            "diagnostics": [payload for _severity, _line, payload in items],
        }
        if args.analyze:
            report["signatures"] = signatures
        reports.append(report)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files": reports,
                    "summary": {**total, "files": len(files), "ok": not failed},
                },
                indent=2,
            )
        )
    elif not failed:
        noise = total["warning"] + total["hint"]
        print(
            f"{len(files)} file(s) clean"
            + (f" ({noise} non-failing finding(s))" if noise else "")
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
