"""Incremental query sessions: materialize once, answer many, resume on growth.

A :class:`QuerySession` binds a program to a slowly-growing extensional
database and serves repeated queries from cached materializations instead of
re-running a fixpoint per query:

* the first query under a strategy builds that strategy's
  :class:`~repro.engines.base.Materialization` (full least model for the
  bottom-up model engines, a per-query demand cache for the constant-driven
  strategies) and caches it under ``(program fingerprint, database version,
  strategy)``;
* subsequent queries answer from the cache -- a relation lookup or a
  memoized traversal result;
* :meth:`QuerySession.insert_facts` appends to the database, advances its
  version and *resumes* every cached materialization with exactly the
  inserted delta (:meth:`~repro.engines.base.Engine.resume`): the model
  engines continue the fixpoint seminaively from the new facts, magic
  continues each cached query's rewritten-program fixpoint, and the
  traversal strategies refresh affected cached queries lazily;
* :meth:`QuerySession.retract_facts` deletes from the database and resumes
  the caches with the signed delta: the model engines run delete-rederive
  (DRed) maintenance -- overdelete every tuple with a derivation through a
  deleted fact, rederive the survivors -- instead of rematerializing from
  scratch, and the demand strategies invalidate affected cached queries
  lazily, exactly as for insertions;
* the serving strategy is picked per query (``engine=None``) by
  :func:`select_engine`, which reuses the planner's program classification
  (:func:`repro.core.planner.classify_query`) plus the engines' own
  ``applicable`` checks.

The session is the architectural seam for heavy repeated traffic: the
one-shot engines stay exactly as the paper describes them, and all
amortization lives here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.planner import classify_query, estimate_strategy_costs
from ..datalog.analysis import ProgramAnalysis, analyze
from ..datalog.database import Database
from ..datalog.literals import Literal
from ..datalog.parser import parse_query
from ..datalog.rules import Program
from ..datalog.terms import Constant, Variable
from ..datalog.plans import (
    drain_planner_events,
    get_execution_mode,
    get_plan_mode,
    rule_plan,
)
from ..datalog.transform import get_program_opt, optimize
from ..engines import Engine, EngineResult, Materialization, get_engine
from ..instrumentation import Counters
from .facts import program_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalog.diagnostics import Diagnostic

QueryLike = Union[str, Literal]

#: Strategies a session may auto-select, in no particular order.  The model
#: fallback must be able to serve any query, so it is always "seminaive".
_MODEL_FALLBACK = "seminaive"


def select_engine(
    program: Program,
    query: Literal,
    analysis: Optional[ProgramAnalysis] = None,
    database: Optional[Database] = None,
) -> str:
    """Pick a serving strategy for ``query`` under session semantics.

    Reuses the planner's static classification plus the candidate engines'
    ``applicable`` checks:

    * ``"base"`` queries (and anything the special methods cannot handle)
      are served from the seminaive model materialization, which answers
      every query over the program by lookup and resumes incrementally;
    * linear binary-chain programs queried with a bound first argument go to
      the paper's graph-traversal engine -- demand caching avoids ever
      materializing the full (typically quadratic) derived relation;
    * other adornable queries with at least one bound argument go to magic
      sets, whose cached fixpoints are seminaively resumable per query;
    * everything else falls back to the model.

    Under ``set_plan_mode("cost")`` -- and when a ``database`` to measure is
    supplied -- the static choice is additionally checked against
    :func:`repro.core.planner.estimate_strategy_costs`: the session
    switches to a differently-classified applicable strategy only when the
    estimates say the static choice is more than twice as expensive, so
    ties and near-ties keep the legacy behaviour.
    """
    analysis = analysis or analyze(program)
    if not program.is_positive:
        # Stratified programs are served by the model materialization: it
        # answers every query by lookup and its resume path knows how to
        # restart at the lowest affected stratum (the demand strategies all
        # reject non-positive programs).
        return _MODEL_FALLBACK
    classification = classify_query(program, query, analysis)
    has_bound = any(isinstance(term, Constant) for term in query.args)
    choice = _MODEL_FALLBACK
    if classification != "base" and has_bound:
        if classification in ("graph", "chain") and get_engine("graph").applicable(
            program, query
        ):
            choice = "graph"
        elif get_engine("magic").applicable(program, query):
            choice = "magic"
    if (
        database is None
        or classification == "base"
        or get_plan_mode() != "cost"
    ):
        return choice
    # Cost mode: let the statistics overrule the static pick, with a 2x
    # legacy-preference margin.
    candidates = {choice, _MODEL_FALLBACK}
    if has_bound:
        if get_engine("graph").applicable(program, query):
            candidates.add("graph")
        if get_engine("magic").applicable(program, query):
            candidates.add("magic")
    costs = estimate_strategy_costs(program, query, database, analysis)
    chosen_cost = costs.get(choice, float("inf"))
    best = min(sorted(candidates), key=lambda name: costs.get(name, float("inf")))
    best_cost = costs.get(best, float("inf"))
    if best != choice and chosen_cost > 2.0 * best_cost:
        return best
    return choice


class PreparedQuery:
    """A parameterized query template bound to a session.

    Created by :meth:`QuerySession.prepare`; calling it substitutes the
    parameter values for the declared parameter variables (every occurrence)
    and serves the resulting query through the session:

    >>> ancestors = session.prepare("anc(X, Y)", params=("X",))
    >>> ancestors("ann").answers      # doctest: +SKIP
    """

    def __init__(
        self,
        session: "QuerySession",
        literal: Literal,
        params: Sequence[str],
        engine: Optional[str] = None,
    ):
        self.session = session
        self.literal = literal
        self.engine = engine
        variables = {term.name for term in literal.args if isinstance(term, Variable)}
        self.params: Tuple[str, ...] = tuple(
            p.name if isinstance(p, Variable) else str(p) for p in params
        )
        unknown = [p for p in self.params if p not in variables]
        if unknown:
            raise ValueError(
                f"parameter(s) {unknown} do not occur as variables in {literal}"
            )

    def bind(self, *values: object) -> Literal:
        """The query literal with parameter values substituted."""
        if len(values) != len(self.params):
            raise ValueError(
                f"prepared query takes {len(self.params)} parameter(s), "
                f"got {len(values)}"
            )
        by_name = dict(zip(self.params, values))
        args = [
            Constant(by_name[term.name])
            if isinstance(term, Variable) and term.name in by_name
            else term
            for term in self.literal.args
        ]
        return Literal(self.literal.predicate, args)

    def __call__(self, *values: object, counters: Optional[Counters] = None) -> EngineResult:
        return self.session.query(self.bind(*values), engine=self.engine, counters=counters)


class QuerySession:
    """Serve repeated queries over a program and a growing database.

    Parameters
    ----------
    program:
        The (fixed) Datalog program.
    database:
        The extensional database the session owns and grows.  Created empty
        when omitted.  Grow it through :meth:`insert_facts` -- inserting into
        it directly still works (the next query detects the version bump and
        resumes), but bypasses the immediate refresh.
    engine:
        Registry name pinning every query to one strategy, or ``None``
        (default) to auto-select per query via :func:`select_engine`.
    validate:
        When true (the default), the session runs the program-level static
        analysis (:func:`repro.datalog.diagnostics.check_program`) at
        construction: error-severity findings raise immediately (e.g.
        :class:`~repro.datalog.errors.StratificationError`, with its
        structured diagnostic) instead of surfacing mid-fixpoint on the
        first query, and warning/hint findings are collected on
        :attr:`diagnostics` for the caller to inspect.  Pass ``False`` to
        skip the analysis (the historical lazy behaviour); evaluation
        results are identical either way.

    Attributes
    ----------
    diagnostics:
        Warning/hint :class:`~repro.datalog.diagnostics.Diagnostic` records
        collected at construction (empty when ``validate=False``).
    """

    def __init__(
        self,
        program: Program,
        database: Optional[Database] = None,
        engine: Optional[str] = None,
        validate: bool = True,
    ):
        self.program = program
        self.database = database if database is not None else Database()
        self.engine = engine
        self.fingerprint = program_fingerprint(program)
        self.analysis = analyze(program)
        self.diagnostics: List["Diagnostic"] = []
        if validate:
            from ..datalog.diagnostics import check_program

            self.diagnostics = check_program(program, database=self.database)
        self._engines: Dict[str, Engine] = {}
        #: (program fingerprint, database version, strategy) -> Materialization
        self._materializations: Dict[Tuple[str, int, str], Materialization] = {}
        self.stats: Dict[str, int] = {
            "queries": 0,
            "materializations": 0,
            "resumes": 0,
        }

    # -- querying -----------------------------------------------------------

    def query(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        counters: Optional[Counters] = None,
    ) -> EngineResult:
        """Answer ``query`` from the (auto-selected) cached materialization."""
        literal = parse_query(query) if isinstance(query, str) else query
        strategy = engine or self.engine or self.strategy_for(literal)
        materialization = self.materialization(strategy)
        self.stats["queries"] += 1
        return materialization.answer(literal, counters=counters)

    def prepare(
        self,
        query: QueryLike,
        params: Sequence[str] = (),
        engine: Optional[str] = None,
    ) -> PreparedQuery:
        """A reusable parameterized query; ``params`` name template variables.

        When an engine is pinned (here or session-wide) and eager validation
        is on, the pin is checked immediately against a probe binding
        (parameters stand in as constants): an unknown engine name or an
        inapplicable strategy raises
        :class:`~repro.datalog.errors.NotApplicableError` at prepare time
        instead of on the first call.
        """
        literal = parse_query(query) if isinstance(query, str) else query
        prepared = PreparedQuery(self, literal, params, engine=engine)
        strategy = engine or self.engine
        if strategy is not None:
            from ..datalog.diagnostics import eager_validation_enabled
            from ..datalog.errors import NotApplicableError

            if eager_validation_enabled():
                probe = prepared.bind(*(["__probe__"] * len(prepared.params)))
                if not self._engine_for(strategy).applicable(self.program, probe):
                    raise NotApplicableError(
                        f"engine {strategy!r} is not applicable to prepared "
                        f"query {literal} (checked with a probe binding); "
                        "pin a different engine or let the session auto-select"
                    )
        return prepared

    def strategy_for(self, query: QueryLike) -> str:
        """The strategy :meth:`query` would auto-select for ``query``."""
        literal = parse_query(query) if isinstance(query, str) else query
        return select_engine(
            self.program, literal, self.analysis, database=self.database
        )

    def explain(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        counters: Optional[Counters] = None,
    ) -> str:
        """A text report of how the session would serve ``query``.

        Shows the (auto-selected or pinned) strategy, the active plan and
        execution modes, and -- for every IDB rule -- the compiled join
        plan via :meth:`~repro.datalog.plans.JoinPlan.explain`: chosen scan
        order, per-step access paths, the cost model's estimates under
        ``set_plan_mode("cost")``, and observed per-node cardinalities when
        the ``counters`` of a previous run are passed in.  Any planner
        events recorded since the last explain (the adaptive re-planner's
        ``DL601`` estimate-miss hints) are appended and drained.  Under
        ``set_program_opt("on")`` the report of the query-directed program
        optimizer (:mod:`repro.datalog.transform`) is included and the rule
        plans shown are those of the optimized program.
        """
        literal = parse_query(query) if isinstance(query, str) else query
        strategy = engine or self.engine or self.strategy_for(literal)
        lines = [
            f"query {literal}",
            f"strategy: {strategy}",
            f"plan mode: {get_plan_mode()}",
            f"execution mode: {get_execution_mode()}",
        ]
        program = self.program
        if get_program_opt() == "on":
            rewritten = optimize(
                program, queries=(literal.predicate,), database=self.database
            )
            if rewritten.report.changed:
                program = rewritten.program
                lines.extend(rewritten.report.format())
        rules = [
            rule
            for rule in program.idb_rules()
            if rule.body and not rule.is_aggregate
        ]
        if rules:
            lines.append("rule plans:")
            for rule in rules:
                plan = rule_plan(rule, database=self.database)
                for line in plan.explain(counters).splitlines():
                    lines.append(f"  {line}")
        events = drain_planner_events()
        if events:
            lines.append("planner events:")
            for event in events:
                lines.append(f"  {event.format()}")
        return "\n".join(lines)

    # -- materialization cache ---------------------------------------------

    def materialization(self, strategy: str) -> Materialization:
        """The strategy's materialization at the current database version.

        Builds it on first use; if the database version moved past a cached
        materialization (direct inserts bypassing :meth:`insert_facts`), the
        cached one is resumed with exactly the missed delta instead of being
        rebuilt.
        """
        version = self.database.version
        cached = self._materializations.get((self.fingerprint, version, strategy))
        if cached is not None:
            return cached
        # At most one materialization per strategy ever exists; a cache miss
        # at the current version means either none yet or one left behind by
        # a direct database write, which is resumed with the missed delta.
        stale_key = next(
            (k for k in self._materializations if k[2] == strategy), None
        )
        if stale_key is not None:
            materialization = self._materializations.pop(stale_key)
            self._resume(materialization, strategy)
        else:
            engine = self._engine_for(strategy)
            materialization = engine.materialize(self.program, self.database)
            self.stats["materializations"] += 1
        self._materializations[(self.fingerprint, self.database.version, strategy)] = (
            materialization
        )
        return materialization

    def _resume(self, materialization: Materialization, strategy: str) -> None:
        delta = self.database.delta_since(materialization.basis_version)
        self._engine_for(strategy).resume(
            materialization, delta, version=self.database.version
        )
        self.stats["resumes"] += 1

    def _engine_for(self, strategy: str) -> Engine:
        engine = self._engines.get(strategy)
        if engine is None:
            engine = get_engine(strategy)
            self._engines[strategy] = engine
        return engine

    # -- growth -------------------------------------------------------------

    def insert_facts(self, predicate: str, rows: Iterable[Iterable[object]]) -> int:
        """Insert facts and incrementally refresh every cached materialization.

        Returns the number of genuinely new rows.  Duplicates neither advance
        the database version nor trigger any resume work.
        """
        before = self.database.version
        added = self.database.add_facts(predicate, rows)
        if added:
            self._refresh(before)
        return added

    def insert(self, facts: Dict[str, Iterable[Iterable[object]]]) -> int:
        """Insert a multi-predicate batch, refreshing caches once at the end."""
        before = self.database.version
        added = 0
        for predicate, rows in facts.items():
            added += self.database.add_facts(predicate, rows)
        if added:
            self._refresh(before)
        return added

    def retract_facts(
        self, predicate: str, rows: Iterable[Iterable[object]]
    ) -> int:
        """Delete facts and incrementally maintain every cached materialization.

        Returns the number of rows actually present.  Absent rows neither
        advance the database version nor trigger any maintenance work.  The
        cached model materializations are repaired by delete-rederive (DRed)
        -- never rebuilt from scratch -- and the demand caches invalidate
        only the entries whose visible predicates the deletion touches.
        """
        before = self.database.version
        removed = self.database.remove_facts(predicate, rows)
        if removed:
            self._refresh(before)
        return removed

    def retract(self, facts: Dict[str, Iterable[Iterable[object]]]) -> int:
        """Delete a multi-predicate batch, refreshing caches once at the end."""
        before = self.database.version
        removed = 0
        for predicate, rows in facts.items():
            removed += self.database.remove_facts(predicate, rows)
        if removed:
            self._refresh(before)
        return removed

    def update(
        self,
        inserts: Optional[Dict[str, Iterable[Iterable[object]]]] = None,
        deletes: Optional[Dict[str, Iterable[Iterable[object]]]] = None,
    ) -> int:
        """Apply a mixed batch -- deletions first, then insertions -- with one
        refresh at the end; returns the number of effective mutations."""
        before = self.database.version
        changed = 0
        for predicate, rows in (deletes or {}).items():
            changed += self.database.remove_facts(predicate, rows)
        for predicate, rows in (inserts or {}).items():
            changed += self.database.add_facts(predicate, rows)
        if changed:
            self._refresh(before)
        return changed

    def _refresh(self, _before_version: int) -> None:
        version = self.database.version
        refreshed: Dict[Tuple[str, int, str], Materialization] = {}
        for (fingerprint, _, strategy), materialization in list(
            self._materializations.items()
        ):
            self._resume(materialization, strategy)
            refreshed[(fingerprint, version, strategy)] = materialization
        self._materializations = refreshed

    def __repr__(self) -> str:
        return (
            f"QuerySession(program={self.fingerprint}, "
            f"version={self.database.version}, "
            f"materializations={len(self._materializations)})"
        )
