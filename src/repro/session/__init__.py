"""The session layer: versioned databases served by cached materializations.

Everything below this package evaluates one query at a time; everything
about *serving many queries over a slowly-growing database* lives here:

* :func:`~repro.session.facts.combined_database` -- the (program facts +
  EDB) merge memoized per database version, reused by the bare
  ``Engine.answer`` path;
* :class:`~repro.session.session.QuerySession` -- prepared/parameterized
  queries, a materialization cache keyed on ``(program fingerprint,
  database version, strategy)``, automatic incremental refresh on insert,
  and strategy auto-selection via :func:`~repro.session.session
  .select_engine`.

See :mod:`repro.engines.base` for the materialize / answer / resume engine
contract this layer drives.
"""

from .facts import clear_program_facts_cache, combined_database, program_fingerprint
from .session import PreparedQuery, QuerySession, select_engine

__all__ = [
    "PreparedQuery",
    "QuerySession",
    "clear_program_facts_cache",
    "combined_database",
    "program_fingerprint",
    "select_engine",
]
