"""Program-fact memoization: merge a program's facts with an EDB once.

Every engine run evaluates over the union of an external database and the
facts embedded in the program text.  Building that union used to happen per
query -- re-interning and re-adding every program fact each time.  This
module memoizes the combined (EDB + program facts) snapshot per ``(program,
database version)`` and hands out O(1) copy-on-write overlays of it, so both
the bare :meth:`repro.engines.base.Engine.answer` path and the session layer
pay the merge once per database version instead of once per query.

The memo for an external database lives *on that database instance*
(``Database._program_facts_memo``), so its lifetime matches the data and a
version bump invalidates it naturally.  Programs evaluated without an
external database are memoized in a small module-level cache keyed by the
(hashable, immutable) :class:`~repro.datalog.rules.Program` itself.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

from ..datalog.database import Database
from ..datalog.rules import Program
from ..instrumentation import Counters

#: Combined snapshots for programs evaluated without an external database.
_PROGRAM_ONLY_CACHE: "OrderedDict[Program, Database]" = OrderedDict()
_CACHE_LIMIT = 64


def program_fingerprint(program: Program) -> str:
    """A stable, printable fingerprint of a program's rule set.

    Order-insensitive (programs equal up to rule order fingerprint equally)
    and stable across processes, unlike ``hash(program)``.  Used as the
    program component of the session materialization cache key.
    """
    text = "\n".join(sorted(str(rule) for rule in program.rules))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def combined_database(
    program: Program,
    database: Optional[Database],
    counters: Optional[Counters] = None,
) -> Database:
    """A fresh overlay holding ``database``'s relations plus ``program``'s facts.

    The returned database charges retrievals to ``counters`` and may be
    mutated freely (derived relations, magic seeds, ...): writes clone only
    the touched relations, never the memoized snapshot or the caller's
    database.  The underlying combined snapshot is memoized per ``(program,
    database.version)`` -- a database mutation invalidates it on the next
    call through the version bump.
    """
    if database is None:
        snapshot = _PROGRAM_ONLY_CACHE.get(program)
        if snapshot is None:
            snapshot = Database.from_program(program)
            _PROGRAM_ONLY_CACHE[program] = snapshot
            while len(_PROGRAM_ONLY_CACHE) > _CACHE_LIMIT:
                _PROGRAM_ONLY_CACHE.popitem(last=False)
        else:
            _PROGRAM_ONLY_CACHE.move_to_end(program)
        return Database.overlay(snapshot, counters=counters)

    memo = database._program_facts_memo
    entry = memo.get(program)
    if entry is None or entry[0] != database.version:
        snapshot = Database.overlay(database)
        snapshot.load_program_facts(program)
        memo[program] = (database.version, snapshot)
        while len(memo) > _CACHE_LIMIT:
            memo.pop(next(iter(memo)))
    else:
        snapshot = entry[1]
    return Database.overlay(snapshot, counters=counters)


def clear_program_facts_cache() -> None:
    """Drop the module-level program-only snapshots (test isolation helper)."""
    _PROGRAM_ONLY_CACHE.clear()
