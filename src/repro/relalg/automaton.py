"""Nondeterministic finite automata over predicate symbols.

Section 3 of the paper: "We represent this equation as a nondeterministic
finite automaton, denoted by M(e_p).  For an expression e, M(e) is the
automaton obtained by the standard technique from e when we regard e as a
regular expression over the alphabet consisting of all predicate symbols
appearing in e."  The transitions labelled ``id`` are epsilon transitions
interpreted as the identity relation.

This module provides that standard construction (Thompson's construction)
plus the small amount of automaton surgery the evaluation algorithm needs:
fresh-state copying and transition replacement (used by ``EM(p, i)`` in
:mod:`repro.core.automaton`).  The construction intentionally mirrors
Figure 1 of the paper: every operator introduces explicit ``id`` transitions
rather than being optimised away, because the interpretation graph of
Section 3 is defined over exactly these states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .expressions import (
    Compose,
    Empty,
    Expression,
    Identity,
    Inverse,
    Pred,
    Star,
    Union,
)

#: The label used for epsilon / identity transitions, as in the paper's figures.
ID = "id"


@dataclass(frozen=True)
class Transition:
    """A single transition ``source --label--> target``.

    ``label`` is either :data:`ID` or a predicate name; ``inverted`` marks
    transitions that read the predicate backwards (produced by ``Inverse``
    sub-expressions).
    """

    source: int
    label: str
    target: int
    inverted: bool = False

    def is_identity(self) -> bool:
        return self.label == ID

    def __str__(self) -> str:
        arrow = "<-" if self.inverted else "->"
        return f"q{self.source} -{self.label}{arrow} q{self.target}"


class Automaton:
    """A mutable NFA with integer states.

    States are plain integers handed out by :meth:`new_state`, so copies of
    other automata can be spliced in without clashes (the ``EM(p, i)``
    construction of the paper relies on this).
    """

    def __init__(self) -> None:
        self._next_state = 0
        self.initial: int = -1
        self.final: int = -1
        self.transitions: List[Transition] = []
        self._outgoing: Dict[int, List[Transition]] = {}

    # -- construction ----------------------------------------------------------

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        self._outgoing.setdefault(state, [])
        return state

    def add_transition(
        self, source: int, label: str, target: int, inverted: bool = False
    ) -> Transition:
        transition = Transition(source, label, target, inverted)
        self.transitions.append(transition)
        self._outgoing.setdefault(source, []).append(transition)
        self._outgoing.setdefault(target, [])
        return transition

    def remove_transition(self, transition: Transition) -> None:
        self.transitions.remove(transition)
        self._outgoing[transition.source].remove(transition)

    # -- access -------------------------------------------------------------------

    @property
    def states(self) -> List[int]:
        return sorted(self._outgoing)

    def outgoing(self, state: int) -> Tuple[Transition, ...]:
        return tuple(self._outgoing.get(state, ()))

    def transitions_on(self, labels: Iterable[str]) -> List[Transition]:
        wanted = set(labels)
        return [t for t in self.transitions if t.label in wanted]

    def labels(self) -> Set[str]:
        """All non-identity labels used by the automaton."""
        return {t.label for t in self.transitions if t.label != ID}

    def state_count(self) -> int:
        return len(self._outgoing)

    # -- surgery ----------------------------------------------------------------------

    def splice(self, other: "Automaton") -> Dict[int, int]:
        """Copy every state and transition of ``other`` into this automaton.

        Returns the state-renaming map.  The initial/final states of *this*
        automaton are unchanged; the caller wires the copy in with explicit
        ``id`` transitions (exactly as the paper describes for EM(p, i)).
        """
        mapping: Dict[int, int] = {}
        for state in other.states:
            mapping[state] = self.new_state()
        for transition in other.transitions:
            self.add_transition(
                mapping[transition.source],
                transition.label,
                mapping[transition.target],
                transition.inverted,
            )
        return mapping

    def copy(self) -> "Automaton":
        clone = Automaton()
        mapping = clone.splice(self)
        clone.initial = mapping[self.initial]
        clone.final = mapping[self.final]
        return clone

    # -- reporting ----------------------------------------------------------------------

    def __str__(self) -> str:
        lines = [f"initial: q{self.initial}", f"final: q{self.final}"]
        for transition in self.transitions:
            lines.append(str(transition))
        return "\n".join(lines)

    def describe(self) -> str:
        """A short single-line summary."""
        return (
            f"Automaton(states={self.state_count()}, transitions={len(self.transitions)}, "
            f"labels={sorted(self.labels())})"
        )


def thompson(expression: Expression) -> Automaton:
    """Build M(e): the Thompson automaton of ``expression``.

    Every predicate occurrence becomes a single transition labelled with the
    predicate name; ``id`` transitions implement sequencing, choice and the
    closure operator, matching Figure 1 of the paper.
    """
    automaton = Automaton()
    initial, final = _build(expression, automaton)
    automaton.initial = initial
    automaton.final = final
    return automaton


def _build(expression: Expression, automaton: Automaton) -> Tuple[int, int]:
    if isinstance(expression, Pred):
        start = automaton.new_state()
        end = automaton.new_state()
        automaton.add_transition(start, expression.name, end)
        return start, end
    if isinstance(expression, Identity):
        start = automaton.new_state()
        end = automaton.new_state()
        automaton.add_transition(start, ID, end)
        return start, end
    if isinstance(expression, Empty):
        # Two states with no connecting transition: nothing is accepted.
        return automaton.new_state(), automaton.new_state()
    if isinstance(expression, Inverse):
        return _build_inverse(expression.inner, automaton)
    if isinstance(expression, Union):
        start = automaton.new_state()
        end = automaton.new_state()
        for item in expression.items:
            item_start, item_end = _build(item, automaton)
            automaton.add_transition(start, ID, item_start)
            automaton.add_transition(item_end, ID, end)
        return start, end
    if isinstance(expression, Compose):
        start: Optional[int] = None
        previous_end: Optional[int] = None
        for item in expression.items:
            item_start, item_end = _build(item, automaton)
            if start is None:
                start = item_start
            else:
                automaton.add_transition(previous_end, ID, item_start)  # type: ignore[arg-type]
            previous_end = item_end
        assert start is not None and previous_end is not None
        return start, previous_end
    if isinstance(expression, Star):
        inner_start, inner_end = _build(expression.inner, automaton)
        start = automaton.new_state()
        end = automaton.new_state()
        automaton.add_transition(start, ID, inner_start)
        automaton.add_transition(inner_end, ID, end)
        automaton.add_transition(start, ID, end)          # zero iterations
        automaton.add_transition(inner_end, ID, inner_start)  # repeat
        return start, end
    raise TypeError(f"unknown expression node {expression!r}")


def _build_inverse(expression: Expression, automaton: Automaton) -> Tuple[int, int]:
    """Build the automaton of ``expression`` read backwards.

    Inversion distributes over the operators: (e1·e2)⁻¹ = e2⁻¹·e1⁻¹,
    (e1 ∪ e2)⁻¹ = e1⁻¹ ∪ e2⁻¹, (e*)⁻¹ = (e⁻¹)*, and a base predicate becomes
    a single inverted transition.
    """
    if isinstance(expression, Pred):
        start = automaton.new_state()
        end = automaton.new_state()
        automaton.add_transition(start, expression.name, end, inverted=True)
        return start, end
    if isinstance(expression, (Identity, Empty)):
        return _build(expression, automaton)
    if isinstance(expression, Inverse):
        return _build(expression.inner, automaton)
    if isinstance(expression, Union):
        return _build(Union([Inverse(item) for item in expression.items]), automaton)
    if isinstance(expression, Compose):
        reversed_items = [Inverse(item) for item in reversed(expression.items)]
        return _build(Compose(reversed_items), automaton)
    if isinstance(expression, Star):
        return _build(Star(Inverse(expression.inner)), automaton)
    raise TypeError(f"unknown expression node {expression!r}")


def simulate(automaton: Automaton, word: Iterable[str]) -> bool:
    """Language-level simulation: does the automaton accept ``word``?

    ``word`` is a sequence of predicate names.  This ignores the relational
    interpretation entirely and is used in tests to check that M(e) has the
    same language as the regular expression ``e`` (Lemma 2's premise).
    Inverted transitions consume the label ``name^-1``.
    """
    current: Set[int] = _epsilon_closure(automaton, {automaton.initial})
    for symbol in word:
        next_states: Set[int] = set()
        for state in current:
            for transition in automaton.outgoing(state):
                if transition.label == ID:
                    continue
                effective = (
                    f"{transition.label}^-1" if transition.inverted else transition.label
                )
                if effective == symbol:
                    next_states.add(transition.target)
        current = _epsilon_closure(automaton, next_states)
        if not current:
            return False
    return automaton.final in current


def _epsilon_closure(automaton: Automaton, states: Set[int]) -> Set[int]:
    closure = set(states)
    frontier = list(states)
    while frontier:
        state = frontier.pop()
        for transition in automaton.outgoing(state):
            if transition.label == ID and transition.target not in closure:
                closure.add(transition.target)
                frontier.append(transition.target)
    return closure
