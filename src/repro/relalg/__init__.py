"""Binary relational algebra: relations, expressions, equations, automata.

The substrate for Section 3 of the paper:

* :mod:`~repro.relalg.relation` -- finite binary relations with the "natural"
  operations ∪, ·, *, ⁻¹;
* :mod:`~repro.relalg.expressions` -- the expression language over predicate
  symbols, with structural evaluation and the rewriting helpers Lemma 1
  needs;
* :mod:`~repro.relalg.equations` -- equation systems ``p = e_p`` (step 1 of
  Lemma 1) and a reference least-fixpoint solver;
* :mod:`~repro.relalg.automaton` -- the standard regular-expression-to-NFA
  construction producing M(e), Figure 1 of the paper;
* :mod:`~repro.relalg.hunt` -- the fully preconstructed expression graph of
  Hunt et al. [8], kept as a baseline.
"""

from .automaton import ID, Automaton, Transition, simulate, thompson
from .equations import EquationSystem
from .expressions import (
    Compose,
    Empty,
    Expression,
    Identity,
    Inverse,
    Pred,
    Star,
    Union,
    compose,
    composition_factors,
    distribute,
    empty,
    evaluate,
    identity,
    inverse,
    pred,
    simplify,
    star,
    union,
    union_terms,
)
from .hunt import ExpressionGraph, evaluate_via_graph, query_via_graph
from .relation import BinaryRelation

__all__ = [
    "Automaton",
    "BinaryRelation",
    "Compose",
    "Empty",
    "EquationSystem",
    "Expression",
    "ExpressionGraph",
    "ID",
    "Identity",
    "Inverse",
    "Pred",
    "Star",
    "Transition",
    "Union",
    "compose",
    "composition_factors",
    "distribute",
    "empty",
    "evaluate",
    "evaluate_via_graph",
    "identity",
    "inverse",
    "pred",
    "query_via_graph",
    "simplify",
    "simulate",
    "star",
    "thompson",
    "union",
    "union_terms",
]
