"""Relational expressions over binary relations.

Lemma 1 of the paper transforms a linear binary-chain program into a system
of equations whose right-hand sides are expressions over predicate symbols
built from ∪ (union), · (composition) and * (reflexive transitive closure).
This module provides that expression language:

* the AST (:class:`Pred`, :class:`Union`, :class:`Compose`, :class:`Star`,
  :class:`Inverse`, :class:`Identity`, :class:`Empty`);
* structural evaluation against an environment of concrete
  :class:`~repro.relalg.relation.BinaryRelation` values;
* the rewriting helpers Lemma 1 needs (substitution, flattening into a union
  of composition sequences, factoring of left/right recursion, distribution
  of composition over union);
* the size measure of the paper ("the total number of tuples in the argument
  relations, where different occurrences of the same relation are considered
  different relations").

Expressions are immutable and hashable.  The constructors normalise nothing;
call :func:`simplify` for the algebraic clean-ups (∅ absorption, id units,
flattening).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .relation import BinaryRelation


class Expression:
    """Base class of all expression nodes."""

    __slots__ = ()

    # -- structure ----------------------------------------------------------

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions."""
        return ()

    def predicates(self) -> Set[str]:
        """All predicate names referenced anywhere in the expression."""
        result: Set[str] = set()
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Pred):
                result.add(node.name)
            stack.extend(node.children())
        return result

    def contains(self, name: str) -> bool:
        """True when a predicate called ``name`` occurs in the expression."""
        return name in self.predicates()

    def occurrence_count(self, names: Iterable[str]) -> int:
        """Number of occurrences of predicates from ``names``."""
        wanted = set(names)
        count = 0
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Pred) and node.name in wanted:
                count += 1
            stack.extend(node.children())
        return count

    def substitute(self, name: str, replacement: "Expression") -> "Expression":
        """Replace every occurrence of predicate ``name`` by ``replacement``."""
        raise NotImplementedError

    def size(self, sizes: Dict[str, int]) -> int:
        """The paper's size measure: total tuples over all *occurrences*.

        ``sizes`` maps predicate names to their relation cardinalities.
        Unknown names count as zero.
        """
        total = 0
        stack: List[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Pred):
                total += sizes.get(node.name, 0)
            stack.extend(node.children())
        return total

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        env: Dict[str, BinaryRelation],
        universe: Optional[Set[object]] = None,
    ) -> BinaryRelation:
        """Evaluate the expression over concrete relations.

        ``env`` maps predicate names to relations; names missing from the
        environment denote the empty relation.  ``universe`` fixes the carrier
        of ``id`` and of the reflexive part of ``*``; when omitted, the active
        domain of the relevant sub-relation is used.
        """
        raise NotImplementedError

    # -- dunder -------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class Pred(Expression):
    """A reference to a (base or derived) predicate."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("predicate name must be non-empty")
        self.name = name

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return replacement if self.name == name else self

    def evaluate(self, env, universe=None) -> BinaryRelation:
        return env.get(self.name, BinaryRelation.empty())

    def _key(self):
        return self.name

    def __str__(self) -> str:
        return self.name


class Identity(Expression):
    """The identity relation ``id`` (unit of composition)."""

    __slots__ = ()

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return self

    def evaluate(self, env, universe=None) -> BinaryRelation:
        if universe is None:
            universe = set()
            for relation in env.values():
                universe |= relation.active_domain()
        return BinaryRelation.identity(universe)

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "id"


class Empty(Expression):
    """The empty relation ∅ (unit of union, absorbing for composition)."""

    __slots__ = ()

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return self

    def evaluate(self, env, universe=None) -> BinaryRelation:
        return BinaryRelation.empty()

    def _key(self):
        return ()

    def __str__(self) -> str:
        return "0"


class Union(Expression):
    """An n-ary union ``e1 ∪ e2 ∪ ... ∪ ek``."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expression]):
        self.items: Tuple[Expression, ...] = tuple(items)
        if not self.items:
            raise ValueError("Union requires at least one operand; use Empty() for none")

    def children(self) -> Tuple[Expression, ...]:
        return self.items

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return Union([item.substitute(name, replacement) for item in self.items])

    def evaluate(self, env, universe=None) -> BinaryRelation:
        # One index-maintaining builder over all branches instead of a chain
        # of pairwise unions, each snapshotting an intermediate store.
        return BinaryRelation.union_all(
            item.evaluate(env, universe) for item in self.items
        )

    def _key(self):
        return self.items

    def __str__(self) -> str:
        return " U ".join(_wrap(item, for_union=True) for item in self.items)


class Compose(Expression):
    """An n-ary composition ``e1 · e2 · ... · ek``."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expression]):
        self.items: Tuple[Expression, ...] = tuple(items)
        if not self.items:
            raise ValueError("Compose requires at least one operand; use Identity() for none")

    def children(self) -> Tuple[Expression, ...]:
        return self.items

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return Compose([item.substitute(name, replacement) for item in self.items])

    def evaluate(self, env, universe=None) -> BinaryRelation:
        result: Optional[BinaryRelation] = None
        for item in self.items:
            value = item.evaluate(env, universe)
            result = value if result is None else result.compose(value)
        assert result is not None
        return result

    def _key(self):
        return self.items

    def __str__(self) -> str:
        return ".".join(_wrap(item, for_union=False) for item in self.items)


class Star(Expression):
    """Reflexive transitive closure ``e*``."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expression):
        self.inner = inner

    def children(self) -> Tuple[Expression, ...]:
        return (self.inner,)

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return Star(self.inner.substitute(name, replacement))

    def evaluate(self, env, universe=None) -> BinaryRelation:
        if universe is None:
            # The reflexive part must cover every value that can flow into the
            # closure, not just the active domain of the inner relation --
            # otherwise e0 . e1* would lose tuples of e0 whenever e1 is small.
            universe = set()
            for relation in env.values():
                universe |= relation.active_domain()
        return self.inner.evaluate(env, universe).reflexive_transitive_closure(universe)

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_wrap_atomic(self.inner)}*"


class Inverse(Expression):
    """Inverse ``e⁻¹`` (needed for queries of the form p(X, b))."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expression):
        self.inner = inner

    def children(self) -> Tuple[Expression, ...]:
        return (self.inner,)

    def substitute(self, name: str, replacement: Expression) -> Expression:
        return Inverse(self.inner.substitute(name, replacement))

    def evaluate(self, env, universe=None) -> BinaryRelation:
        return self.inner.evaluate(env, universe).inverse()

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_wrap_atomic(self.inner)}^-1"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def pred(name: str) -> Pred:
    """A predicate reference."""
    return Pred(name)


def union(*items: Expression) -> Expression:
    """n-ary union; zero operands give ∅, one operand is returned unchanged."""
    if not items:
        return Empty()
    if len(items) == 1:
        return items[0]
    return Union(list(items))


def compose(*items: Expression) -> Expression:
    """n-ary composition; zero operands give id, one operand is returned unchanged."""
    if not items:
        return Identity()
    if len(items) == 1:
        return items[0]
    return Compose(list(items))


def star(inner: Expression) -> Star:
    """Reflexive transitive closure."""
    return Star(inner)


def inverse(inner: Expression) -> Inverse:
    """Relational inverse."""
    return Inverse(inner)


def empty() -> Empty:
    """The empty relation."""
    return Empty()


def identity() -> Identity:
    """The identity relation."""
    return Identity()


# ---------------------------------------------------------------------------
# Rendering helpers
# ---------------------------------------------------------------------------

def _wrap(item: Expression, for_union: bool) -> str:
    if isinstance(item, Union) and not for_union:
        return f"({item})"
    if isinstance(item, Union) and for_union:
        return str(item)
    return str(item)


def _wrap_atomic(item: Expression) -> str:
    if isinstance(item, (Pred, Identity, Empty, Star)):
        return str(item)
    return f"({item})"


# ---------------------------------------------------------------------------
# Simplification and normal forms (the workhorses of Lemma 1)
# ---------------------------------------------------------------------------

def simplify(expression: Expression) -> Expression:
    """Algebraic clean-up.

    * flattens nested unions and compositions;
    * removes ∅ from unions and lets it absorb compositions;
    * removes ``id`` factors from compositions;
    * deduplicates union branches (preserving first-occurrence order);
    * rewrites ``∅*`` and ``id*`` to ``id`` and collapses ``(e*)*`` to ``e*``.
    """
    if isinstance(expression, (Pred, Identity, Empty)):
        return expression
    if isinstance(expression, Star):
        inner = simplify(expression.inner)
        if isinstance(inner, (Empty, Identity)):
            return Identity()
        if isinstance(inner, Star):
            return inner
        return Star(inner)
    if isinstance(expression, Inverse):
        inner = simplify(expression.inner)
        if isinstance(inner, Empty):
            return Empty()
        if isinstance(inner, Identity):
            return Identity()
        if isinstance(inner, Inverse):
            return inner.inner
        return Inverse(inner)
    if isinstance(expression, Union):
        flat: List[Expression] = []
        for item in expression.items:
            item = simplify(item)
            if isinstance(item, Empty):
                continue
            if isinstance(item, Union):
                flat.extend(item.items)
            else:
                flat.append(item)
        deduplicated: List[Expression] = []
        seen: Set[Expression] = set()
        for item in flat:
            if item not in seen:
                seen.add(item)
                deduplicated.append(item)
        return union(*deduplicated)
    if isinstance(expression, Compose):
        flat = []
        for item in expression.items:
            item = simplify(item)
            if isinstance(item, Empty):
                return Empty()
            if isinstance(item, Identity):
                continue
            if isinstance(item, Compose):
                flat.extend(item.items)
            else:
                flat.append(item)
        return compose(*flat)
    raise TypeError(f"unknown expression node {expression!r}")


def union_terms(expression: Expression) -> List[Expression]:
    """The top-level union branches of a simplified expression.

    ``e1 ∪ e2 ∪ e3`` yields ``[e1, e2, e3]``; a non-union expression yields a
    singleton list; ∅ yields the empty list.
    """
    expression = simplify(expression)
    if isinstance(expression, Empty):
        return []
    if isinstance(expression, Union):
        return list(expression.items)
    return [expression]


def composition_factors(expression: Expression) -> List[Expression]:
    """The top-level composition factors of a term.

    ``e1 · e2 · e3`` yields ``[e1, e2, e3]``; any other expression yields a
    singleton list.
    """
    if isinstance(expression, Compose):
        return list(expression.items)
    return [expression]


def distribute(expression: Expression, over: Set[str]) -> Expression:
    """Distribute composition over union around occurrences of ``over``.

    This is step 8 of Lemma 1: rewrite ``e · (e1 ∪ ... ∪ en)`` into
    ``e·e1 ∪ ... ∪ e·en`` (and symmetrically on the left) whenever the union
    contains an occurrence of a predicate in ``over``, so that left/right
    recursion through the union becomes visible to steps 3 and 4.  Unions not
    involving ``over`` are left alone (they can stay factored, which keeps
    expressions small -- the Horner form the paper advocates).
    """
    expression = simplify(expression)
    if isinstance(expression, (Pred, Identity, Empty)):
        return expression
    if isinstance(expression, Star):
        return Star(distribute(expression.inner, over))
    if isinstance(expression, Inverse):
        return Inverse(distribute(expression.inner, over))
    if isinstance(expression, Union):
        return simplify(union(*[distribute(item, over) for item in expression.items]))
    if isinstance(expression, Compose):
        factors = [distribute(f, over) for f in expression.items]
        # Repeatedly split the first union factor that mentions `over`.
        for index, factor in enumerate(factors):
            if isinstance(factor, Union) and factor.predicates() & over:
                prefix = factors[:index]
                suffix = factors[index + 1 :]
                branches = [
                    distribute(simplify(compose(*(prefix + [item] + suffix))), over)
                    for item in factor.items
                ]
                return simplify(union(*branches))
        return simplify(compose(*factors))
    raise TypeError(f"unknown expression node {expression!r}")


def evaluate(
    expression: Expression,
    env: Dict[str, BinaryRelation],
    universe: Optional[Set[object]] = None,
) -> BinaryRelation:
    """Module-level convenience wrapper for :meth:`Expression.evaluate`."""
    return expression.evaluate(env, universe)
