"""Systems of equations over relational expressions.

Step 1 of Lemma 1 turns a binary-chain program into an *initial* equation
system: one equation ``p = e1 ∪ ... ∪ em`` per derived predicate ``p``, where
``ei`` is the concatenation (composition) of the body predicate symbols of
the i-th rule for ``p``.  The subsequent rewriting steps of Lemma 1 operate
on such systems; they live in :mod:`repro.core.lemma1`.  This module provides
the data structure itself plus:

* construction from a binary-chain program (step 1);
* a reference *fixpoint solver* that computes the unique smallest solution of
  a system over concrete base relations -- statement (7) of Lemma 1 says this
  solution equals the relations computed by the program, which the test suite
  checks against :func:`repro.datalog.semantics.least_model`;
* the bookkeeping queries the rewriting steps need (which predicates appear
  in which right-hand sides, occurrence counts, substitution).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..datalog.analysis import ProgramAnalysis, analyze
from ..datalog.database import Database
from ..datalog.errors import NotApplicableError
from ..datalog.rules import Program
from .expressions import (
    Expression,
    Identity,
    compose,
    pred,
    simplify,
    union,
)
from .relation import BinaryRelation


class EquationSystem:
    """An ordered mapping ``derived predicate -> right-hand-side expression``."""

    def __init__(
        self,
        equations: Mapping[str, Expression],
        base_predicates: Iterable[str] = (),
    ):
        self.equations: Dict[str, Expression] = dict(equations)
        self.base_predicates: Set[str] = set(base_predicates)
        overlap = self.base_predicates & set(self.equations)
        if overlap:
            raise ValueError(f"predicates {sorted(overlap)} are both base and derived")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_program(
        cls, program: Program, analysis: Optional[ProgramAnalysis] = None
    ) -> "EquationSystem":
        """Step 1 of Lemma 1: the initial equation system of a binary-chain program.

        Raises
        ------
        NotApplicableError
            If the intensional rules are not all binary-chain rules.
        """
        analysis = analysis or analyze(program)
        if not analysis.is_binary_chain_program():
            raise NotApplicableError(
                "the initial equation system is only defined for binary-chain programs"
            )
        equations: Dict[str, Expression] = {}
        for predicate in sorted(program.derived_predicates):
            branches: List[Expression] = []
            for rule in program.rules_for(predicate):
                if not rule.body:
                    continue
                factors = [pred(lit.predicate) for lit in rule.body]
                branches.append(compose(*factors) if factors else Identity())
            equations[predicate] = simplify(union(*branches))
        return cls(equations, base_predicates=program.base_predicates)

    # -- basic access ------------------------------------------------------------

    @property
    def derived_predicates(self) -> Set[str]:
        return set(self.equations)

    def rhs(self, predicate: str) -> Expression:
        """Right-hand side of the equation for ``predicate``."""
        return self.equations[predicate]

    def predicates_in_rhs(self, predicate: str) -> Set[str]:
        """Predicate names occurring in the right-hand side for ``predicate``."""
        return self.equations[predicate].predicates()

    def dependency_graph(self) -> Dict[str, Set[str]]:
        """derived predicate -> derived predicates occurring in its RHS."""
        return {
            p: self.predicates_in_rhs(p) & self.derived_predicates for p in self.equations
        }

    def derived_occurrences(self, predicate: str) -> int:
        """Occurrences of *derived* predicates in the RHS for ``predicate``."""
        return self.equations[predicate].occurrence_count(self.derived_predicates)

    def __iter__(self) -> Iterator[Tuple[str, Expression]]:
        return iter(self.equations.items())

    def __len__(self) -> int:
        return len(self.equations)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.equations

    def __str__(self) -> str:
        return "\n".join(f"{p} = {e}" for p, e in self.equations.items())

    def __repr__(self) -> str:
        return f"EquationSystem({len(self.equations)} equations)"

    # -- rewriting support ------------------------------------------------------------

    def with_equation(self, predicate: str, expression: Expression) -> "EquationSystem":
        """A copy with the equation for ``predicate`` replaced."""
        updated = dict(self.equations)
        updated[predicate] = expression
        return EquationSystem(updated, self.base_predicates)

    def substitute_everywhere(
        self, predicate: str, expression: Expression, skip: Iterable[str] = ()
    ) -> "EquationSystem":
        """Substitute ``expression`` for ``predicate`` in every other RHS."""
        skipped = set(skip) | {predicate}
        updated = {}
        for name, rhs in self.equations.items():
            if name in skipped:
                updated[name] = rhs
            else:
                updated[name] = simplify(rhs.substitute(predicate, expression))
        return EquationSystem(updated, self.base_predicates)

    def copy(self) -> "EquationSystem":
        return EquationSystem(dict(self.equations), set(self.base_predicates))

    # -- reference solver ------------------------------------------------------------------

    def solve(
        self,
        base_relations: Mapping[str, BinaryRelation],
        universe: Optional[Set[object]] = None,
        max_iterations: int = 10_000,
    ) -> Dict[str, BinaryRelation]:
        """The unique smallest solution of the system over the given base relations.

        Jointly iterates all equations from the empty relations until nothing
        changes (Kleene iteration).  Because every operator is monotone the
        limit is the least solution; statement (7) of Lemma 1 says it agrees
        with the program's semantics.

        Every operator application and every convergence comparison runs on
        the shared interned indexes of the storage kernel
        (:class:`~repro.storage.pairs.PairStore`), so an iteration never
        re-materialises pair sets or rebuilds successor indexes -- the cost
        that historically made this reference solver quadratic in practice
        even on linear instances.
        """
        if universe is None:
            universe = set()
            for relation in base_relations.values():
                universe |= relation.active_domain()
        env: Dict[str, BinaryRelation] = dict(base_relations)
        for predicate in self.equations:
            env.setdefault(predicate, BinaryRelation.empty())
        for _ in range(max_iterations):
            changed = False
            for predicate, expression in self.equations.items():
                value = expression.evaluate(env, universe)
                if value != env[predicate]:
                    env[predicate] = value
                    changed = True
            if not changed:
                return {p: env[p] for p in self.equations}
        raise RuntimeError("equation solving did not converge (increase max_iterations)")

    def solve_database(
        self, database: Database, universe: Optional[Set[object]] = None
    ) -> Dict[str, BinaryRelation]:
        """Like :meth:`solve` but reading the base relations from a Database."""
        base_relations = {}
        for predicate in database.predicates():
            if database.arity(predicate) == 2:
                base_relations[predicate] = BinaryRelation.from_rows(database.rows(predicate))
        return self.solve(base_relations, universe)
