"""The Hunt--Szymanski--Ullman expression-graph baseline [8, 20].

The paper derives its algorithm from the observation (Hunt et al. [8]) that
an expression ``e`` over binary relations with operators ∪, ·, * and ⁻¹ can
be turned into a directed graph ``G(e)`` such that ``e(x, y)`` holds iff
``G(e)`` contains a path from a node representing ``x`` to a node
representing ``y``.  As the paper points out, the original algorithm is
impractical because it *preconstructs the entire graph*: it "contains copies
of all tuples from every argument relation in the expression", and for a
query ``p(a, Y)`` "large portions of G(p) usually are irrelevant to the
query".

This module implements exactly that preconstructed variant.  It serves two
purposes:

* a correctness oracle for expressions that contain no derived predicates
  (the regular case), checked against structural evaluation; and
* the ablation baseline for experiment E13/E14: demand-driven traversal
  (``repro.core.traversal``) versus full preconstruction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..instrumentation import Counters
from .automaton import ID, Automaton, thompson
from .expressions import Expression
from .relation import BinaryRelation

Node = Tuple[int, object]


class ExpressionGraph:
    """The fully preconstructed interpretation graph of an expression.

    Nodes are pairs ``(state, value)`` for *every* automaton state and every
    value in the universe of the argument relations; arcs follow the
    transitions of ``M(e)`` interpreted over the relations (``id`` arcs keep
    the value, a transition on ``r`` steps along a tuple of ``r``).
    """

    def __init__(
        self,
        expression: Expression,
        env: Dict[str, BinaryRelation],
        universe: Optional[Set[object]] = None,
        counters: Optional[Counters] = None,
    ):
        self.expression = expression
        self.env = env
        self.counters = counters if counters is not None else Counters()
        self.automaton: Automaton = thompson(expression)
        if universe is None:
            universe = set()
            for relation in env.values():
                universe |= relation.active_domain()
        self.universe: Set[object] = set(universe)
        self.nodes: Set[Node] = set()
        self.successors: Dict[Node, Set[Node]] = {}
        self._construct()

    # -- construction -------------------------------------------------------

    def _construct(self) -> None:
        """Materialise every node and arc (the paper's criticised step)."""
        for state in self.automaton.states:
            for value in self.universe:
                node = (state, value)
                self.nodes.add(node)
                self.successors[node] = set()
                self.counters.nodes_generated += 1
        for state in self.automaton.states:
            for transition in self.automaton.outgoing(state):
                if transition.label == ID:
                    for value in self.universe:
                        self._add_arc((state, value), (transition.target, value))
                    continue
                relation = self.env.get(transition.label, BinaryRelation.empty())
                # Iterate the interned store directly (externed lazily) rather
                # than materialising the frozenset view of the pair set.
                for left, right in relation:
                    self.counters.fact_retrievals += 1
                    if transition.inverted:
                        left, right = right, left
                    self._add_arc((state, left), (transition.target, right))

    def _add_arc(self, source: Node, target: Node) -> None:
        if source not in self.successors:
            self.nodes.add(source)
            self.successors[source] = set()
            self.counters.nodes_generated += 1
        if target not in self.successors:
            self.nodes.add(target)
            self.successors[target] = set()
            self.counters.nodes_generated += 1
        self.successors[source].add(target)

    # -- queries ---------------------------------------------------------------

    def node_count(self) -> int:
        return len(self.nodes)

    def arc_count(self) -> int:
        return sum(len(targets) for targets in self.successors.values())

    def reachable(self, start: Node) -> Set[Node]:
        """All nodes reachable from ``start`` (including it)."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in self.successors.get(node, ()):  # type: ignore[arg-type]
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def answers_from(self, value: object) -> Set[object]:
        """The answer to ``e(value, Y)``: final-state values reachable from (qs, value)."""
        start = (self.automaton.initial, value)
        final = self.automaton.final
        return {v for (state, v) in self.reachable(start) if state == final}

    def relation(self) -> BinaryRelation:
        """The full relation denoted by the expression."""
        pairs = []
        for value in self.universe:
            for answer in self.answers_from(value):
                pairs.append((value, answer))
        return BinaryRelation(pairs)


def evaluate_via_graph(
    expression: Expression,
    env: Dict[str, BinaryRelation],
    universe: Optional[Set[object]] = None,
    counters: Optional[Counters] = None,
) -> BinaryRelation:
    """Evaluate an expression by building its full graph (Hunt et al. style)."""
    return ExpressionGraph(expression, env, universe, counters).relation()


def query_via_graph(
    expression: Expression,
    env: Dict[str, BinaryRelation],
    bound_value: object,
    universe: Optional[Set[object]] = None,
    counters: Optional[Counters] = None,
) -> Set[object]:
    """Answer ``e(bound_value, Y)`` using the fully preconstructed graph.

    The whole graph is built even though only the part reachable from
    ``(initial, bound_value)`` matters -- this is precisely the inefficiency
    the paper's demand-driven algorithm removes.
    """
    return ExpressionGraph(expression, env, universe, counters).answers_from(bound_value)
