"""Binary relations and the "natural" operations of the paper.

Section 2: "The 'natural' set of operations used in connection with binary
relations contains the following operations: ∪ (union), · (composition), and
* (reflexive transitive closure)."  The paper additionally mentions inverse
(⁻¹) when discussing Hunt et al. [8] and uses the identity relation ``id`` as
a transition label in the automata of Section 3.

A :class:`BinaryRelation` is an immutable set of pairs with the relational
operations as methods.  Reflexivity is always taken over the *active domain*
of the relation (its domain united with its range), matching the convention
of the paper's ``p*`` rules (``p*(X, X) :-``) when the variables range over
the constants actually present.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

Pair = Tuple[object, object]


class BinaryRelation:
    """An immutable finite binary relation (a set of pairs)."""

    __slots__ = ("pairs", "_by_first", "_by_second")

    def __init__(self, pairs: Iterable[Pair] = ()):
        self.pairs: FrozenSet[Pair] = frozenset((a, b) for a, b in pairs)
        self._by_first: Optional[Dict[object, Set[object]]] = None
        self._by_second: Optional[Dict[object, Set[object]]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "BinaryRelation":
        """The empty relation ∅."""
        return _EMPTY

    @classmethod
    def identity(cls, values: Iterable[object]) -> "BinaryRelation":
        """The identity relation over ``values``."""
        return cls((v, v) for v in values)

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[object, ...]]) -> "BinaryRelation":
        """Build from database rows, which must all have length two."""
        pairs = []
        for row in rows:
            if len(row) != 2:
                raise ValueError(f"expected binary tuples, got {row!r}")
            pairs.append((row[0], row[1]))
        return cls(pairs)

    # -- index helpers --------------------------------------------------------

    def successors(self, value: object) -> Set[object]:
        """All ``y`` with ``(value, y)`` in the relation."""
        if self._by_first is None:
            index: Dict[object, Set[object]] = {}
            for a, b in self.pairs:
                index.setdefault(a, set()).add(b)
            self._by_first = index
        return self._by_first.get(value, set())

    def predecessors(self, value: object) -> Set[object]:
        """All ``x`` with ``(x, value)`` in the relation."""
        if self._by_second is None:
            index: Dict[object, Set[object]] = {}
            for a, b in self.pairs:
                index.setdefault(b, set()).add(a)
            self._by_second = index
        return self._by_second.get(value, set())

    # -- the paper's operations --------------------------------------------------

    def union(self, other: "BinaryRelation") -> "BinaryRelation":
        """p ∪ q."""
        return BinaryRelation(self.pairs | other.pairs)

    def compose(self, other: "BinaryRelation") -> "BinaryRelation":
        """p · q  =  {(x, z) | ∃y: p(x, y) and q(y, z)}."""
        result = set()
        for x, y in self.pairs:
            for z in other.successors(y):
                result.add((x, z))
        return BinaryRelation(result)

    def transitive_closure(self) -> "BinaryRelation":
        """p⁺: one or more composition steps."""
        closure: Set[Pair] = set(self.pairs)
        frontier: Set[Pair] = set(self.pairs)
        while frontier:
            new_pairs: Set[Pair] = set()
            for x, y in frontier:
                for z in self.successors(y):
                    pair = (x, z)
                    if pair not in closure:
                        new_pairs.add(pair)
            closure |= new_pairs
            frontier = new_pairs
        return BinaryRelation(closure)

    def reflexive_transitive_closure(
        self, universe: Optional[Iterable[object]] = None
    ) -> "BinaryRelation":
        """p*: zero or more composition steps.

        The identity part ranges over ``universe`` when given, otherwise over
        the active domain (domain ∪ range) of the relation.
        """
        if universe is None:
            universe = self.active_domain()
        closure = set(self.transitive_closure().pairs)
        closure.update((v, v) for v in universe)
        return BinaryRelation(closure)

    def inverse(self) -> "BinaryRelation":
        """p⁻¹  =  {(y, x) | p(x, y)}."""
        return BinaryRelation((b, a) for a, b in self.pairs)

    # -- domains --------------------------------------------------------------------

    def domain(self) -> Set[object]:
        """Values assumed by the first argument (the paper's *domain*)."""
        return {a for a, _ in self.pairs}

    def range(self) -> Set[object]:
        """Values assumed by the second argument (the paper's *range*)."""
        return {b for _, b in self.pairs}

    def active_domain(self) -> Set[object]:
        """domain ∪ range."""
        return self.domain() | self.range()

    # -- queries -----------------------------------------------------------------------

    def image(self, values: Iterable[object]) -> Set[object]:
        """The image of a set of values: ∪ successors(v)."""
        result: Set[object] = set()
        for value in values:
            result |= self.successors(value)
        return result

    def restrict_domain(self, values: Iterable[object]) -> "BinaryRelation":
        """The sub-relation whose first components lie in ``values``."""
        allowed = set(values)
        return BinaryRelation((a, b) for a, b in self.pairs if a in allowed)

    def reachable_from(self, start: object) -> Set[object]:
        """All values reachable from ``start`` by one or more steps."""
        seen: Set[object] = set()
        frontier = [start]
        visited = {start}
        while frontier:
            node = frontier.pop()
            for succ in self.successors(node):
                if succ not in seen:
                    seen.add(succ)
                if succ not in visited:
                    visited.add(succ)
                    frontier.append(succ)
        return seen

    def longest_path_length_from(self, start: object) -> int:
        """Length of the longest simple path from ``start`` (∞-safe only on DAGs).

        Used for the Theorem 4 bound: the number of iterations of the main
        loop is at most the length of the longest path in ``e1|a``.  Raises
        ``ValueError`` when a cycle is reachable from ``start``.
        """
        memo: Dict[object, int] = {}
        in_progress: Set[object] = set()

        def visit(node: object) -> int:
            if node in memo:
                return memo[node]
            if node in in_progress:
                raise ValueError("cycle reachable from start: longest path is unbounded")
            in_progress.add(node)
            best = 0
            for succ in self.successors(node):
                best = max(best, 1 + visit(succ))
            in_progress.discard(node)
            memo[node] = best
            return best

        return visit(start)

    def is_acyclic(self) -> bool:
        """True when the relation, viewed as a directed graph, has no cycle."""
        colour: Dict[object, int] = {}
        for start in self.domain():
            if colour.get(start, 0) == 2:
                continue
            stack = [(start, iter(sorted(self.successors(start), key=repr)))]
            colour[start] = 1
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, 0)
                    if state == 1:
                        return False
                    if state == 0:
                        colour[child] = 1
                        stack.append((child, iter(sorted(self.successors(child), key=repr))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = 2
                    stack.pop()
        return True

    # -- dunder ---------------------------------------------------------------------------

    def __contains__(self, pair: Pair) -> bool:
        return tuple(pair) in self.pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __eq__(self, other) -> bool:
        if isinstance(other, BinaryRelation):
            return self.pairs == other.pairs
        if isinstance(other, (set, frozenset)):
            return self.pairs == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __or__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.union(other)

    def __mul__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.compose(other)

    def __repr__(self) -> str:
        sample = sorted(self.pairs, key=repr)[:4]
        suffix = ", ..." if len(self.pairs) > 4 else ""
        inner = ", ".join(repr(p) for p in sample)
        return f"BinaryRelation({{{inner}{suffix}}})"


_EMPTY = BinaryRelation()
