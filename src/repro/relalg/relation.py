"""Binary relations and the "natural" operations of the paper.

Section 2: "The 'natural' set of operations used in connection with binary
relations contains the following operations: ∪ (union), · (composition), and
* (reflexive transitive closure)."  The paper additionally mentions inverse
(⁻¹) when discussing Hunt et al. [8] and uses the identity relation ``id`` as
a transition label in the automata of Section 3.

A :class:`BinaryRelation` is an immutable *view* over the interned storage
kernel: constants are interned into dense codes by the process-wide
:class:`~repro.storage.interner.Interner` and the pair set lives in a
:class:`~repro.storage.pairs.PairStore`, whose successor/predecessor indexes
are maintained incrementally and *shared* between operator inputs and
outputs.  Applying an operator therefore never re-materialises the full pair
set or rebuilds an index from scratch -- ``inverse`` swaps two index dicts,
``union`` clones only the buckets the smaller operand touches, and the
closures run frontier walks over C-level set unions.  Value semantics are
unchanged: two relations are equal exactly when they hold the same pairs.

Reflexivity is always taken over the *active domain* of the relation (its
domain united with its range), matching the convention of the paper's ``p*``
rules (``p*(X, X) :-``) when the variables range over the constants actually
present.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..storage.interner import global_interner
from ..storage.pairs import PairBuilder, PairStore

Pair = Tuple[object, object]


class BinaryRelation:
    """An immutable finite binary relation (a set of pairs)."""

    __slots__ = ("_store", "_pairs")

    def __init__(self, pairs: Iterable[Pair] = ()):
        interner = global_interner()
        intern = interner.intern
        builder = PairBuilder()
        for a, b in pairs:
            builder.add(intern(a), intern(b))
        self._store: PairStore = builder.build()
        self._pairs: Optional[FrozenSet[Pair]] = None

    @classmethod
    def _from_store(cls, store: PairStore) -> "BinaryRelation":
        relation = cls.__new__(cls)
        relation._store = store
        relation._pairs = None
        return relation

    @property
    def store(self) -> PairStore:
        """The underlying interned pair store (read-only)."""
        return self._store

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The pairs as a frozenset of object tuples (externed lazily)."""
        cached = self._pairs
        if cached is None:
            extern = global_interner().extern
            cached = frozenset(
                (extern(a), extern(b)) for a, b in self._store.iter_pairs()
            )
            self._pairs = cached
        return cached

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "BinaryRelation":
        """The empty relation ∅."""
        return _EMPTY

    @classmethod
    def identity(cls, values: Iterable[object]) -> "BinaryRelation":
        """The identity relation over ``values``."""
        return cls((v, v) for v in values)

    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[object, ...]]) -> "BinaryRelation":
        """Build from database rows, which must all have length two."""
        pairs = []
        for row in rows:
            if len(row) != 2:
                raise ValueError(f"expected binary tuples, got {row!r}")
            pairs.append((row[0], row[1]))
        return cls(pairs)

    @classmethod
    def union_all(cls, relations: Iterable["BinaryRelation"]) -> "BinaryRelation":
        """∪ over many relations with a single index-maintaining builder."""
        stores = [r._store for r in relations if r._store.pair_count]
        if not stores:
            return _EMPTY
        if len(stores) == 1:
            return cls._from_store(stores[0])
        biggest = max(range(len(stores)), key=lambda i: stores[i].pair_count)
        builder = PairBuilder(base=stores[biggest])
        for index, store in enumerate(stores):
            if index != biggest:
                builder.add_store(store)
        return cls._from_store(builder.build())

    # -- index helpers --------------------------------------------------------

    def successors(self, value: object) -> Set[object]:
        """All ``y`` with ``(value, y)`` in the relation."""
        interner = global_interner()
        code = interner.code_of(value)
        if code is None:
            return set()
        return interner.extern_set(self._store.successors(code))

    def predecessors(self, value: object) -> Set[object]:
        """All ``x`` with ``(x, value)`` in the relation."""
        interner = global_interner()
        code = interner.code_of(value)
        if code is None:
            return set()
        return interner.extern_set(self._store.predecessors(code))

    # -- the paper's operations --------------------------------------------------

    def union(self, other: "BinaryRelation") -> "BinaryRelation":
        """p ∪ q."""
        return BinaryRelation._from_store(self._store.union(other._store))

    def compose(self, other: "BinaryRelation") -> "BinaryRelation":
        """p · q  =  {(x, z) | ∃y: p(x, y) and q(y, z)}."""
        return BinaryRelation._from_store(self._store.compose(other._store))

    def transitive_closure(self) -> "BinaryRelation":
        """p⁺: one or more composition steps."""
        return BinaryRelation._from_store(self._store.transitive_closure())

    def reflexive_transitive_closure(
        self, universe: Optional[Iterable[object]] = None
    ) -> "BinaryRelation":
        """p*: zero or more composition steps.

        The identity part ranges over ``universe`` when given, otherwise over
        the active domain (domain ∪ range) of the relation.
        """
        if universe is None:
            universe_codes = self._store.active_domain_codes()
        else:
            intern = global_interner().intern
            universe_codes = {intern(value) for value in universe}
        return BinaryRelation._from_store(
            self._store.reflexive_transitive_closure(universe_codes)
        )

    def inverse(self) -> "BinaryRelation":
        """p⁻¹  =  {(y, x) | p(x, y)} -- an O(1) index swap."""
        return BinaryRelation._from_store(self._store.inverse())

    # -- domains --------------------------------------------------------------------

    def domain(self) -> Set[object]:
        """Values assumed by the first argument (the paper's *domain*)."""
        return global_interner().extern_set(self._store.domain_codes())

    def range(self) -> Set[object]:
        """Values assumed by the second argument (the paper's *range*)."""
        return global_interner().extern_set(self._store.range_codes())

    def active_domain(self) -> Set[object]:
        """domain ∪ range."""
        return global_interner().extern_set(self._store.active_domain_codes())

    # -- queries -----------------------------------------------------------------------

    def image(self, values: Iterable[object]) -> Set[object]:
        """The image of a set of values: ∪ successors(v)."""
        interner = global_interner()
        code_of = interner.code_of
        codes = []
        for value in values:
            code = code_of(value)
            if code is not None:
                codes.append(code)
        return interner.extern_set(self._store.image(codes))

    def restrict_domain(self, values: Iterable[object]) -> "BinaryRelation":
        """The sub-relation whose first components lie in ``values``.

        Surviving index buckets are shared with this relation, not rebuilt.
        """
        code_of = global_interner().code_of
        allowed = set()
        for value in values:
            code = code_of(value)
            if code is not None:
                allowed.add(code)
        return BinaryRelation._from_store(self._store.restrict_domain(allowed))

    def reachable_from(self, start: object) -> Set[object]:
        """All values reachable from ``start`` by one or more steps.

        A single frontier walk over the successor index; the start value is
        included exactly when it lies on a cycle reachable from itself.
        """
        interner = global_interner()
        code = interner.code_of(start)
        if code is None:
            return set()
        return interner.extern_set(self._store.reachable_from(code))

    def longest_path_length_from(self, start: object) -> int:
        """Length of the longest simple path from ``start`` (∞-safe only on DAGs).

        Used for the Theorem 4 bound: the number of iterations of the main
        loop is at most the length of the longest path in ``e1|a``.  Raises
        ``ValueError`` when a cycle is reachable from ``start``.
        """
        code = global_interner().code_of(start)
        if code is None:
            return 0
        store = self._store
        memo: Dict[int, int] = {}
        in_progress: Set[int] = set()

        def visit(node: int) -> int:
            if node in memo:
                return memo[node]
            if node in in_progress:
                raise ValueError("cycle reachable from start: longest path is unbounded")
            in_progress.add(node)
            best = 0
            for succ in store.successors(node):
                best = max(best, 1 + visit(succ))
            in_progress.discard(node)
            memo[node] = best
            return best

        return visit(code)

    def is_acyclic(self) -> bool:
        """True when the relation, viewed as a directed graph, has no cycle."""
        store = self._store
        colour: Dict[int, int] = {}
        for start in store.domain_codes():
            if colour.get(start, 0) == 2:
                continue
            stack = [(start, iter(sorted(store.successors(start))))]
            colour[start] = 1
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, 0)
                    if state == 1:
                        return False
                    if state == 0:
                        colour[child] = 1
                        stack.append((child, iter(sorted(store.successors(child)))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = 2
                    stack.pop()
        return True

    # -- dunder ---------------------------------------------------------------------------

    def __contains__(self, pair: Pair) -> bool:
        pair = tuple(pair)
        if len(pair) != 2:
            return False
        code_of = global_interner().code_of
        code_a = code_of(pair[0])
        code_b = code_of(pair[1])
        if code_a is None or code_b is None:
            return False
        return self._store.member(code_a, code_b)

    def __iter__(self) -> Iterator[Pair]:
        extern = global_interner().extern
        for a, b in self._store.iter_pairs():
            yield (extern(a), extern(b))

    def __len__(self) -> int:
        return self._store.pair_count

    def __bool__(self) -> bool:
        return bool(self._store)

    def __eq__(self, other) -> bool:
        if isinstance(other, BinaryRelation):
            return self._store == other._store
        if isinstance(other, (set, frozenset)):
            return self.pairs == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        # Hash the externed pair set, not the store: __eq__ accepts plain
        # pair (frozen)sets, so the hash must match frozenset hashing for
        # mixed containers to behave.
        return hash(self.pairs)

    def __or__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.union(other)

    def __mul__(self, other: "BinaryRelation") -> "BinaryRelation":
        return self.compose(other)

    def __repr__(self) -> str:
        sample = sorted(self.pairs, key=repr)[:4]
        suffix = ", ..." if len(self.pairs) > 4 else ""
        inner = ", ".join(repr(p) for p in sample)
        return f"BinaryRelation({{{inner}{suffix}}})"


_EMPTY = BinaryRelation()
